// Passage splitting / aggregation tests, plus an end-to-end check that
// passage-level indexing retrieves long mixed-topic documents by their
// relevant part.

#include <gtest/gtest.h>

#include "lsi/lsi_index.hpp"
#include "text/passages.hpp"

namespace {

using namespace lsi::text;

TEST(Passages, SplitsOnBlankLines) {
  Collection docs = {{"D", "first paragraph here\n\nsecond paragraph"}};
  auto pc = split_into_passages(docs);
  ASSERT_EQ(pc.passages.size(), 2u);
  EXPECT_EQ(pc.passages[0].label, "D#0");
  EXPECT_EQ(pc.passages[1].label, "D#1");
  EXPECT_EQ(pc.passages[0].body, "first paragraph here");
  EXPECT_EQ(pc.parent[0], 0u);
  EXPECT_EQ(pc.parent[1], 0u);
  EXPECT_EQ(pc.num_documents, 1u);
}

TEST(Passages, WindowsLongChunksWithOverlap) {
  std::string body;
  for (int i = 0; i < 100; ++i) {
    body += 'w';
    body += std::to_string(i);
    body += ' ';
  }
  PassageOptions opts;
  opts.max_words = 40;
  opts.overlap_words = 10;
  auto pc = split_into_passages({{"D", body}}, opts);
  // step 30: windows [0,40) [30,70) [60,100) -> 3, maybe 4 passages.
  EXPECT_GE(pc.passages.size(), 3u);
  // Overlap: last word of window 0 appears in window 1.
  EXPECT_NE(pc.passages[1].body.find("w30"), std::string::npos);
  EXPECT_NE(pc.passages[0].body.find("w30"), std::string::npos);
}

TEST(Passages, EmptyDocumentKeepsDenseIndices) {
  auto pc = split_into_passages({{"A", ""}, {"B", "content"}});
  ASSERT_EQ(pc.passages.size(), 2u);
  EXPECT_EQ(pc.parent[0], 0u);
  EXPECT_EQ(pc.parent[1], 1u);
}

TEST(Passages, AggregateTakesBestPassagePerParent) {
  PassageCollection pc;
  pc.num_documents = 2;
  pc.passages = {{"A#0", ""}, {"A#1", ""}, {"B#0", ""}};
  pc.parent = {0, 0, 1};
  auto ranked = aggregate_to_parents(
      pc, {{0, 0.3}, {1, 0.9}, {2, 0.5}});
  ASSERT_EQ(ranked.size(), 2u);
  EXPECT_EQ(ranked[0].document, 0u);
  EXPECT_DOUBLE_EQ(ranked[0].score, 0.9);
  EXPECT_EQ(ranked[0].best_passage, 1u);
  EXPECT_EQ(ranked[1].document, 1u);
}

TEST(Passages, AggregateSkipsUnscoredParents) {
  PassageCollection pc;
  pc.num_documents = 3;
  pc.passages = {{"A#0", ""}, {"B#0", ""}, {"C#0", ""}};
  pc.parent = {0, 1, 2};
  auto ranked = aggregate_to_parents(pc, {{2, 0.4}});
  ASSERT_EQ(ranked.size(), 1u);
  EXPECT_EQ(ranked[0].document, 2u);
}

TEST(Passages, MixedTopicDocumentFoundByItsRelevantPart) {
  // One long document concatenates an elephant paragraph onto many car
  // paragraphs. Whole-document indexing dilutes the elephant signal;
  // passage-level indexing surfaces the document for an elephant query via
  // its best passage.
  std::string car_part;
  for (int i = 0; i < 6; ++i) {
    car_part +=
        "the car dealer sells sedans with motors and engines to drivers "
        "who like a powerful automobile with chassis upgrades\n\n";
  }
  Collection docs = {
      {"mixed", car_part +
                    "elephants roam the savanna and the elephant herd "
                    "drinks at the river at dusk"},
      {"cars", "automobile makers improve engines and sedans daily"},
      {"more_cars", "drivers prefer a car with responsive brakes"},
  };

  auto pc = split_into_passages(docs);
  lsi::core::IndexOptions opts;
  opts.k = 4;
  auto index = lsi::core::LsiIndex::try_build(pc.passages, opts).value();

  std::vector<std::pair<std::size_t, double>> passage_scores;
  for (const auto& r : index.query("elephant savanna")) {
    passage_scores.push_back({r.doc, r.cosine});
  }
  auto ranked = aggregate_to_parents(pc, passage_scores);
  ASSERT_FALSE(ranked.empty());
  EXPECT_EQ(ranked[0].document, 0u);  // the mixed doc wins...
  // ...through its elephant passage, not a car one.
  EXPECT_NE(pc.passages[ranked[0].best_passage].body.find("elephant"),
            std::string::npos);
}

}  // namespace
