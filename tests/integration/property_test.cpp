// Cross-cutting property sweeps: invariants that must hold over whole
// parameter grids rather than single examples.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>

#include "la/jacobi_svd.hpp"
#include "la/lanczos.hpp"
#include "lsi/folding.hpp"
#include "lsi/update.hpp"
#include "synth/sparse_random.hpp"
#include "util/thread_pool.hpp"
#include "weighting/weighting.hpp"

namespace {

using namespace lsi;
using la::index_t;

// ---------------------------------------------------------------------------
// Lanczos invariants over a (shape, density, k) grid.
// ---------------------------------------------------------------------------

class LanczosGrid
    : public ::testing::TestWithParam<std::tuple<int, int, double, int>> {};

TEST_P(LanczosGrid, InvariantsHold) {
  auto [m, n, density, k] = GetParam();
  auto a = synth::random_sparse_matrix(m, n, density, 1000 + m + n);
  la::LanczosOptions opts;
  opts.k = k;
  auto svd = la::lanczos_svd(a, opts);

  // Descending nonnegative singular values.
  for (std::size_t i = 0; i < svd.s.size(); ++i) {
    EXPECT_GE(svd.s[i], -1e-12);
    if (i) {
      EXPECT_LE(svd.s[i], svd.s[i - 1] + 1e-12);
    }
  }
  // sigma_1 <= ||A||_F and reconstruction never exceeds the matrix norm.
  const double fro = a.to_dense().frobenius_norm();
  if (!svd.s.empty()) {
    EXPECT_LE(svd.s[0], fro + 1e-9);
  }
  EXPECT_LE(svd.reconstruct().frobenius_norm(), fro + 1e-9);
  // Orthonormal factors.
  EXPECT_LT(la::orthonormality_error(svd.u), 1e-8);
  EXPECT_LT(la::orthonormality_error(svd.v), 1e-8);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, LanczosGrid,
    ::testing::Values(std::tuple{40, 30, 0.05, 4},
                      std::tuple{40, 30, 0.3, 4},
                      std::tuple{80, 20, 0.1, 8},
                      std::tuple{20, 80, 0.1, 8},
                      std::tuple{120, 100, 0.02, 12},
                      std::tuple{64, 64, 0.15, 16}));

// ---------------------------------------------------------------------------
// Weighting invariants over all 20 schemes.
// ---------------------------------------------------------------------------

class WeightingSchemes
    : public ::testing::TestWithParam<std::size_t> {};

TEST_P(WeightingSchemes, PreservesSparsityAndSigns) {
  const auto scheme = weighting::all_schemes()[GetParam()];
  auto counts = synth::random_sparse_matrix(25, 18, 0.2, 55);
  auto weighted = weighting::apply(counts, scheme);
  EXPECT_EQ(weighted.rows(), counts.rows());
  EXPECT_EQ(weighted.cols(), counts.cols());
  // Weighting never creates entries where counts had none...
  EXPECT_LE(weighted.nnz(), counts.nnz());
  // ...and never produces negatives from positive counts.
  for (double v : weighted.values()) EXPECT_GE(v, 0.0);
}

TEST_P(WeightingSchemes, GlobalWeightsFiniteAndNonnegative) {
  const auto scheme = weighting::all_schemes()[GetParam()];
  auto counts = synth::random_sparse_matrix(30, 22, 0.15, 56);
  for (double g : weighting::global_weights(counts, scheme.global)) {
    EXPECT_TRUE(std::isfinite(g));
    EXPECT_GE(g, -1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, WeightingSchemes,
                         ::testing::Range<std::size_t>(0, 20));

// ---------------------------------------------------------------------------
// Update invariants: any update path keeps sigma sorted, factors
// orthonormal (for the SVD paths) and shapes consistent.
// ---------------------------------------------------------------------------

enum class UpdatePath { kFold, kProjection, kExact };

class UpdatePaths : public ::testing::TestWithParam<UpdatePath> {};

TEST_P(UpdatePaths, InvariantsAfterDocumentAddition) {
  auto a = synth::random_sparse_matrix(35, 25, 0.2, 77);
  auto d = synth::random_sparse_matrix(35, 6, 0.2, 78);
  auto space = core::try_build_semantic_space(a, 7).value();
  switch (GetParam()) {
    case UpdatePath::kFold:
      core::fold_in_documents(space, d);
      break;
    case UpdatePath::kProjection:
      core::update_documents(space, d);
      break;
    case UpdatePath::kExact:
      core::update_documents_exact(space, d);
      break;
  }
  EXPECT_EQ(space.num_docs(), 31u);
  EXPECT_EQ(space.num_terms(), 35u);
  EXPECT_EQ(space.k(), 7u);
  for (std::size_t i = 1; i < space.sigma.size(); ++i) {
    EXPECT_LE(space.sigma[i], space.sigma[i - 1] + 1e-12);
  }
  EXPECT_LT(core::orthogonality_loss(space.u), 1e-8);
  if (GetParam() != UpdatePath::kFold) {
    EXPECT_LT(core::orthogonality_loss(space.v), 1e-8);
  }
}

INSTANTIATE_TEST_SUITE_P(Paths, UpdatePaths,
                         ::testing::Values(UpdatePath::kFold,
                                           UpdatePath::kProjection,
                                           UpdatePath::kExact));

// ---------------------------------------------------------------------------
// Thread pool under real concurrency (the global pool may be single-
// threaded on 1-core machines; these force multi-worker pools).
// ---------------------------------------------------------------------------

TEST(ThreadPoolStress, ManyWorkersManyTasks) {
  lsi::util::ThreadPool pool(4);
  std::atomic<long long> total{0};
  for (int t = 0; t < 2000; ++t) {
    pool.submit([&total, t] { total.fetch_add(t); });
  }
  pool.wait_idle();
  EXPECT_EQ(total.load(), 2000LL * 1999 / 2);
}

TEST(ThreadPoolStress, RepeatedWaitIdleCycles) {
  lsi::util::ThreadPool pool(3);
  std::atomic<int> count{0};
  for (int round = 0; round < 50; ++round) {
    for (int t = 0; t < 20; ++t) pool.submit([&count] { ++count; });
    pool.wait_idle();
    EXPECT_EQ(count.load(), (round + 1) * 20);
  }
}

TEST(ThreadPoolStress, WaitIdleOnEmptyPool) {
  lsi::util::ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

}  // namespace
