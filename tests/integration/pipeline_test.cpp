// Cross-module integration tests: the full parse -> weight -> SVD ->
// retrieve pipeline on synthetic collections, checking the paper's headline
// qualitative claims end to end.

#include <gtest/gtest.h>

#include "baseline/vector_model.hpp"
#include "eval/metrics.hpp"
#include "lsi/lsi_index.hpp"
#include "synth/corpus.hpp"
#include "text/parser.hpp"
#include "weighting/weighting.hpp"

namespace {

using namespace lsi;

synth::CorpusSpec stress_synonymy_spec(std::uint64_t seed) {
  synth::CorpusSpec spec;
  spec.topics = 6;
  spec.concepts_per_topic = 10;
  spec.shared_concepts = 15;
  spec.forms_per_concept = 3;
  spec.docs_per_topic = 25;
  spec.mean_doc_len = 35;
  spec.queries_per_topic = 4;
  spec.query_offform_prob = 0.8;  // queries mostly use rare synonyms
  spec.seed = seed;
  return spec;
}

/// Mean 3-point average precision of LSI and of the keyword vector model
/// over all queries of a corpus.
struct PairedScores {
  double lsi = 0.0;
  double keyword = 0.0;
};

PairedScores evaluate(const synth::SyntheticCorpus& corpus,
                      core::index_t k) {
  core::IndexOptions opts;
  opts.scheme = weighting::kLogEntropy;
  opts.k = k;
  auto index = core::LsiIndex::try_build(corpus.docs, opts).value();
  baseline::VectorSpaceModel vsm(index.weighted_matrix());

  std::vector<double> lsi_scores, kw_scores;
  for (const auto& q : corpus.queries) {
    std::vector<la::index_t> lsi_ranked;
    for (const auto& r : index.query(q.text)) lsi_ranked.push_back(r.doc);
    lsi_scores.push_back(
        eval::three_point_average_precision(lsi_ranked, q.relevant));

    std::vector<la::index_t> kw_ranked;
    for (const auto& r : vsm.rank(index.weighted_term_vector(q.text))) {
      kw_ranked.push_back(r.doc);
    }
    kw_scores.push_back(
        eval::three_point_average_precision(kw_ranked, q.relevant));
  }
  return {eval::mean(lsi_scores), eval::mean(kw_scores)};
}

TEST(Pipeline, LsiBeatsKeywordUnderHeavySynonymy) {
  // The Section 5.1 claim: "LSI performs best relative to standard vector
  // methods when the queries and relevant documents do not share many
  // words".
  auto corpus = synth::generate_corpus(stress_synonymy_spec(11));
  auto scores = evaluate(corpus, 40);
  EXPECT_GT(scores.lsi, scores.keyword);
  EXPECT_GT(scores.lsi, 0.4);  // genuinely useful, not just relatively
}

TEST(Pipeline, AdvantageShrinksWithoutSynonymyStress) {
  // With queries using the dominant forms, keyword matching becomes
  // competitive and LSI's relative advantage narrows.
  auto hard = stress_synonymy_spec(12);
  auto easy = hard;
  easy.query_offform_prob = 0.0;
  auto hard_scores = evaluate(synth::generate_corpus(hard), 40);
  auto easy_scores = evaluate(synth::generate_corpus(easy), 40);
  const double hard_gain = hard_scores.lsi - hard_scores.keyword;
  const double easy_gain = easy_scores.lsi - easy_scores.keyword;
  EXPECT_GT(hard_gain, easy_gain);
}

TEST(Pipeline, FoldInKeepsNewDocsRetrievable) {
  auto spec = stress_synonymy_spec(13);
  spec.docs_per_topic = 20;
  auto corpus = synth::generate_corpus(spec);

  // Hold out the last 15 documents, build on the rest, fold the rest in.
  text::Collection train(corpus.docs.begin(), corpus.docs.end() - 15);
  text::Collection extra(corpus.docs.end() - 15, corpus.docs.end());

  core::IndexOptions opts;
  opts.k = 40;
  auto index = core::LsiIndex::try_build(train, opts).value();
  index.add_documents(extra, core::AddMethod::kFoldIn);
  EXPECT_EQ(index.space().num_docs(), corpus.docs.size());

  // Querying with a held-out document's own text must rank it at the top.
  auto results = index.query(extra[0].body);
  ASSERT_FALSE(results.empty());
  bool in_top3 = false;
  for (std::size_t i = 0; i < 3 && i < results.size(); ++i) {
    in_top3 = in_top3 || results[i].label == extra[0].label;
  }
  EXPECT_TRUE(in_top3);
}

TEST(Pipeline, SvdUpdateKeepsRetrievalQuality) {
  auto spec = stress_synonymy_spec(14);
  auto corpus = synth::generate_corpus(spec);
  text::Collection train(corpus.docs.begin(), corpus.docs.end() - 20);
  text::Collection extra(corpus.docs.end() - 20, corpus.docs.end());

  core::IndexOptions opts;
  opts.k = 30;
  auto folded = core::LsiIndex::try_build(train, opts).value();
  folded.add_documents(extra, core::AddMethod::kFoldIn);
  auto updated = core::LsiIndex::try_build(train, opts).value();
  updated.add_documents(extra, core::AddMethod::kSvdUpdate);

  // SVD-updating preserves orthogonality; folding-in doesn't.
  EXPECT_LT(core::orthogonality_loss(updated.space().v), 1e-9);
  EXPECT_GT(core::orthogonality_loss(folded.space().v), 1e-9);

  // Both must retrieve at reasonable quality.
  std::vector<double> fold_scores, update_scores;
  for (const auto& q : corpus.queries) {
    std::vector<la::index_t> rf, ru;
    for (const auto& r : folded.query(q.text)) rf.push_back(r.doc);
    for (const auto& r : updated.query(q.text)) ru.push_back(r.doc);
    fold_scores.push_back(
        eval::three_point_average_precision(rf, q.relevant));
    update_scores.push_back(
        eval::three_point_average_precision(ru, q.relevant));
  }
  EXPECT_GT(eval::mean(update_scores), 0.3);
  EXPECT_GT(eval::mean(fold_scores), 0.3);
}

TEST(Pipeline, RelevanceFeedbackImprovesPrecision) {
  // Section 5.1: replacing the query with the first relevant document
  // improves performance substantially. Needs an impoverished initial
  // query (the paper: "many words ... augment the initial query which is
  // usually quite impoverished"), so this corpus uses 2-word queries over
  // noisy topics.
  auto spec = stress_synonymy_spec(15);
  spec.query_len = 2;
  spec.general_prob = 0.5;
  spec.polysemy_prob = 0.2;
  spec.queries_per_topic = 6;
  auto corpus = synth::generate_corpus(spec);
  core::IndexOptions opts;
  opts.k = 40;
  auto index = core::LsiIndex::try_build(corpus.docs, opts).value();

  std::vector<double> before, after;
  for (const auto& q : corpus.queries) {
    auto initial = index.query(q.text);
    std::vector<la::index_t> ranked0;
    for (const auto& r : initial) ranked0.push_back(r.doc);
    before.push_back(eval::average_precision(ranked0, q.relevant));

    // First relevant document in the initial ranking becomes the new query.
    la::index_t first_rel = 0;
    bool found = false;
    for (const auto& r : initial) {
      if (q.relevant.count(r.doc)) {
        first_rel = r.doc;
        found = true;
        break;
      }
    }
    if (!found) continue;
    auto fb = index.query(corpus.docs[first_rel].body);
    std::vector<la::index_t> ranked1;
    for (const auto& r : fb) {
      if (r.doc != first_rel) ranked1.push_back(r.doc);  // residual ranking
    }
    eval::DocSet residual_relevant = q.relevant;
    residual_relevant.erase(first_rel);
    after.push_back(eval::average_precision(ranked1, residual_relevant));
  }
  EXPECT_GT(eval::mean(after), eval::mean(before));
}

}  // namespace
