// Failure-injection and hostile-input tests across modules: truncated
// database streams, binary garbage into the parser, extreme numerics into
// the SVD solvers. Nothing here may crash, hang, or silently corrupt.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "data/med_topics.hpp"
#include "la/jacobi_svd.hpp"
#include "la/lanczos.hpp"
#include "lsi/io.hpp"
#include "lsi/lsi_index.hpp"
#include "text/parser.hpp"

namespace {

using namespace lsi;

core::LsiDatabase sample_database() {
  core::IndexOptions opts;
  opts.parser.min_document_frequency = 2;
  opts.parser.fold_plurals = true;
  opts.k = 3;
  auto index = core::LsiIndex::try_build(data::med_topics(), opts).value();
  return {index.space(), index.vocabulary(), index.doc_labels(),
          index.options().scheme, index.global_weights()};
}

TEST(Robustness, DatabaseTruncationSweepAlwaysThrows) {
  std::stringstream buffer;
  core::try_save_database(buffer, sample_database()).or_throw();
  const std::string bytes = buffer.str();
  ASSERT_GT(bytes.size(), 64u);

  // Truncate at a spread of lengths including every boundary-ish point.
  for (std::size_t len = 0; len < bytes.size();
       len += std::max<std::size_t>(1, bytes.size() / 97)) {
    std::stringstream truncated(bytes.substr(0, len));
    EXPECT_THROW((void)core::try_load_database(truncated).value(), std::runtime_error)
        << "silently accepted a stream truncated at " << len;
  }
  // The complete stream still loads.
  std::stringstream whole(bytes);
  EXPECT_NO_THROW((void)core::try_load_database(whole).value());
}

TEST(Robustness, DatabaseBitFlipInHeaderRejected) {
  std::stringstream buffer;
  core::try_save_database(buffer, sample_database()).or_throw();
  std::string bytes = buffer.str();
  bytes[0] ^= 0x5a;  // corrupt the magic
  std::stringstream corrupted(bytes);
  EXPECT_THROW((void)core::try_load_database(corrupted).value(), std::runtime_error);
}

TEST(Robustness, ParserSurvivesBinaryGarbage) {
  std::string garbage;
  for (int i = 0; i < 4096; ++i) {
    garbage += static_cast<char>((i * 73 + 11) % 256);
  }
  text::Collection docs = {{"bin", garbage}, {"ok", "normal words here"}};
  auto tdm = text::build_term_document_matrix(docs, {});
  EXPECT_EQ(tdm.counts.cols(), 2u);
  // The normal document's terms still index.
  EXPECT_TRUE(tdm.vocabulary.find("normal").has_value());
}

TEST(Robustness, ParserSurvivesPathologicalTokens) {
  std::string huge_token(100000, 'a');
  text::Collection docs = {{"A", huge_token + " regular"},
                           {"B", std::string(5000, ' ') + "regular"}};
  auto tdm = text::build_term_document_matrix(docs, {});
  EXPECT_TRUE(tdm.vocabulary.find("regular").has_value());
  EXPECT_TRUE(tdm.vocabulary.find(huge_token).has_value());
}

TEST(Robustness, EmptyQueryOnRealIndex) {
  core::IndexOptions opts;
  opts.k = 2;
  auto index = core::LsiIndex::try_build(data::med_topics(), opts).value();
  auto results = index.query("");
  // All-zero projection: every cosine is 0; nothing may crash.
  for (const auto& r : results) EXPECT_DOUBLE_EQ(r.cosine, 0.0);
  EXPECT_TRUE(index.query("zzz qqq xxx", {}).size() <= 14u);
}

TEST(Robustness, JacobiExtremeScales) {
  // Entries spanning 1e-150 .. 1e150 must not overflow the rotations.
  la::DenseMatrix a(3, 3);
  a(0, 0) = 1e150;
  a(1, 1) = 1.0;
  a(2, 2) = 1e-150;
  auto s = la::jacobi_svd(a);
  EXPECT_NEAR(s.s[0] / 1e150, 1.0, 1e-12);
  EXPECT_NEAR(s.s[1], 1.0, 1e-12);
}

TEST(Robustness, JacobiDuplicateColumns) {
  la::DenseMatrix a(5, 4);
  for (la::index_t i = 0; i < 5; ++i) {
    const double v = std::sin(i + 1.0);
    for (la::index_t j = 0; j < 4; ++j) a(i, j) = v;  // rank 1
  }
  auto s = la::jacobi_svd(a);
  EXPECT_GT(s.s[0], 0.0);
  for (std::size_t i = 1; i < s.s.size(); ++i) EXPECT_NEAR(s.s[i], 0.0, 1e-9);
}

TEST(Robustness, LanczosConstantMatrix) {
  // All-equal entries: rank 1 with a huge null space; the restart logic
  // must terminate.
  la::CooBuilder b(30, 20);
  for (la::index_t i = 0; i < 30; ++i) {
    for (la::index_t j = 0; j < 20; ++j) b.add(i, j, 2.0);
  }
  la::LanczosOptions opts;
  opts.k = 5;
  auto s = la::lanczos_svd(b.to_csc(), opts);
  EXPECT_NEAR(s.s[0], 2.0 * std::sqrt(30.0 * 20.0), 1e-8);
  for (std::size_t i = 1; i < s.s.size(); ++i) EXPECT_NEAR(s.s[i], 0.0, 1e-7);
}

TEST(Robustness, LanczosSingleColumn) {
  la::CooBuilder b(40, 1);
  for (la::index_t i = 0; i < 40; ++i) b.add(i, 0, 1.0 + i);
  la::LanczosOptions opts;
  opts.k = 1;
  auto s = la::lanczos_svd(b.to_csc(), opts);
  double expect = 0.0;
  for (la::index_t i = 0; i < 40; ++i) expect += (1.0 + i) * (1.0 + i);
  EXPECT_NEAR(s.s[0], std::sqrt(expect), 1e-9);
}

TEST(Robustness, IndexWithOneDocument) {
  core::IndexOptions opts;
  opts.k = 5;
  auto index = core::LsiIndex::try_build({{"only", "solitary document text"}},
                                     opts).value();
  EXPECT_EQ(index.space().num_docs(), 1u);
  auto results = index.query("solitary");
  ASSERT_EQ(results.size(), 1u);
  EXPECT_GT(results[0].cosine, 0.9);
}

TEST(Robustness, IndexWithIdenticalDocuments) {
  text::Collection docs(6, {"dup", "same words every time"});
  for (std::size_t i = 0; i < docs.size(); ++i) {
    std::string label = "D";
    label += std::to_string(i);
    docs[i].label = std::move(label);
  }
  core::IndexOptions opts;
  opts.k = 3;
  auto index = core::LsiIndex::try_build(docs, opts).value();
  auto results = index.query("same words");
  EXPECT_EQ(results.size(), 6u);
  for (const auto& r : results) EXPECT_NEAR(r.cosine, results[0].cosine, 1e-9);
}

}  // namespace
