// MetricsRegistry unit tests: counter/gauge semantics, histogram quantile
// accuracy against exact quantiles of the recorded sample, and thread-safety
// of concurrent recording.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "obs/metrics.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace lsi;

TEST(Counter, StartsAtZeroAndAccumulates) {
  obs::Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Gauge, KeepsLastValue) {
  obs::Gauge g;
  EXPECT_EQ(g.value(), 0.0);
  g.set(3.5);
  g.set(-1.25);
  EXPECT_EQ(g.value(), -1.25);
}

/// Exact quantile of a sorted sample with the same nearest-rank convention
/// the histogram approximates.
double exact_quantile(std::vector<double> sorted, double q) {
  std::sort(sorted.begin(), sorted.end());
  if (sorted.empty()) return 0.0;
  const double rank = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

TEST(Histogram, QuantilesTrackExactQuantiles) {
  // Log-uniform latencies spanning microseconds to tens of milliseconds —
  // the range the span histograms actually see.
  util::Rng rng(123);
  std::vector<double> sample;
  obs::Histogram h;
  for (int i = 0; i < 20000; ++i) {
    const double v = 1e-6 * std::pow(10.0, 4.0 * rng.uniform());
    sample.push_back(v);
    h.record(v);
  }
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, sample.size());
  for (const double q : {0.5, 0.95, 0.99}) {
    const double exact = exact_quantile(sample, q);
    const double approx = snap.quantile(q);
    // The documented bound: relative error at most the bucket growth factor
    // (2^(1/4) - 1 ~ 19%).
    EXPECT_NEAR(approx, exact, 0.20 * exact) << "q = " << q;
  }
}

TEST(Histogram, ExtremeQuantilesReturnRecordedMinMax) {
  obs::Histogram h;
  for (const double v : {0.004, 0.001, 0.009, 0.002}) h.record(v);
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.quantile(0.0), 0.001);
  EXPECT_EQ(snap.quantile(1.0), 0.009);
  EXPECT_EQ(snap.min, 0.001);
  EXPECT_EQ(snap.max, 0.009);
  EXPECT_NEAR(snap.mean(), 0.004, 1e-12);
}

TEST(Histogram, OutOfRangeValuesLandInEdgeBuckets) {
  obs::Histogram h;
  h.record(0.0);     // below the first boundary
  h.record(1e12);    // beyond the last boundary
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, 2u);
  EXPECT_EQ(snap.buckets.front(), 1u);
  EXPECT_EQ(snap.buckets.back(), 1u);
}

TEST(MetricsRegistry, SameNameSameMetric) {
  obs::MetricsRegistry reg;
  obs::Counter& a = reg.counter("x");
  obs::Counter& b = reg.counter("x");
  EXPECT_EQ(&a, &b);
  a.add(7);
  EXPECT_EQ(reg.counter("x").value(), 7u);
  EXPECT_NE(&reg.counter("x"), &reg.counter("y"));
}

TEST(MetricsRegistry, SnapshotsAreNameOrdered) {
  obs::MetricsRegistry reg;
  reg.counter("b").add(2);
  reg.counter("a").add(1);
  reg.gauge("z").set(26.0);
  reg.gauge("y").set(25.0);
  const auto counters = reg.counters();
  ASSERT_EQ(counters.size(), 2u);
  EXPECT_EQ(counters[0].first, "a");
  EXPECT_EQ(counters[1].first, "b");
  const auto gauges = reg.gauges();
  ASSERT_EQ(gauges.size(), 2u);
  EXPECT_EQ(gauges[0].first, "y");
  EXPECT_EQ(gauges[1].first, "z");
}

TEST(MetricsRegistry, ConcurrentRecordingLosesNothing) {
  obs::MetricsRegistry reg;
  constexpr std::size_t kIters = 10000;
  util::parallel_for(
      0, kIters,
      [&](std::size_t i) {
        reg.counter("hits").add();
        reg.histogram("lat").record(1e-6 * static_cast<double>(i + 1));
      },
      /*grain=*/64);
  EXPECT_EQ(reg.counter("hits").value(), kIters);
  EXPECT_EQ(reg.histogram("lat").count(), kIters);
}

}  // namespace
