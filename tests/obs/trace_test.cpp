// TraceSpan / Sink tests: the runtime toggle (no active sink = no-op),
// ScopedSink nesting, parent/child self-time attribution, and aggregation of
// spans opened inside util::parallel_for workers.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "obs/trace.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace lsi;

/// The snapshot for `name`, or a default-constructed one if absent.
obs::SpanSnapshot find_span(const obs::Sink& sink, const std::string& name) {
  for (const auto& s : sink.spans()) {
    if (s.name == name) return s;
  }
  return {};
}

class TraceTest : public ::testing::Test {
 protected:
  // Every test starts and ends with observability off.
  void SetUp() override { ASSERT_EQ(obs::Sink::active(), nullptr); }
  void TearDown() override { ASSERT_EQ(obs::Sink::active(), nullptr); }
};

TEST_F(TraceTest, NoActiveSinkMeansDeadSpans) {
  LSI_OBS_SPAN(span, "orphan");
  EXPECT_FALSE(span.live());
  // Helper shorthands are equally inert without a sink.
  obs::count("orphan.counter");
  obs::gauge("orphan.gauge", 1.0);
}

TEST_F(TraceTest, ScopedSinkInstallsAndRestores) {
  obs::Sink outer, inner;
  {
    obs::ScopedSink a(&outer);
    EXPECT_EQ(obs::Sink::active(), &outer);
    {
      obs::ScopedSink b(&inner);
      EXPECT_EQ(obs::Sink::active(), &inner);
    }
    EXPECT_EQ(obs::Sink::active(), &outer);
  }
  EXPECT_EQ(obs::Sink::active(), nullptr);
}

TEST_F(TraceTest, SpanAggregatesCountAndTime) {
  obs::Sink sink;
  {
    obs::ScopedSink scoped(&sink);
    for (int i = 0; i < 5; ++i) {
      LSI_OBS_SPAN(span, "work");
      EXPECT_TRUE(span.live());
    }
  }
  const auto snap = find_span(sink, "work");
  EXPECT_EQ(snap.count, 5u);
  EXPECT_GE(snap.total_seconds, 0.0);
  EXPECT_EQ(snap.latency.count, 5u);
}

TEST_F(TraceTest, ChildTimeIsSubtractedFromParentSelfTime) {
  obs::Sink sink;
  {
    obs::ScopedSink scoped(&sink);
    LSI_OBS_SPAN(parent, "outer");
    for (int i = 0; i < 3; ++i) {
      LSI_OBS_SPAN(child, "inner");
      // Burn a little time so child totals are measurably nonzero.
      volatile double x = 1.0;
      for (int j = 0; j < 50000; ++j) x = x * 1.0000001;
    }
  }
  const auto outer = find_span(sink, "outer");
  const auto inner = find_span(sink, "inner");
  ASSERT_EQ(outer.count, 1u);
  ASSERT_EQ(inner.count, 3u);
  // Self = total - directly nested children, so outer self strictly below
  // outer total, and inner (a leaf) keeps self == total.
  EXPECT_LT(outer.self_seconds, outer.total_seconds);
  EXPECT_NEAR(outer.self_seconds, outer.total_seconds - inner.total_seconds,
              1e-9);
  EXPECT_NEAR(inner.self_seconds, inner.total_seconds, 1e-12);
}

TEST_F(TraceTest, StopIsIdempotentAndEndsTheSpanEarly) {
  obs::Sink sink;
  {
    obs::ScopedSink scoped(&sink);
    LSI_OBS_SPAN(span, "early");
    span.stop();
    span.stop();  // second stop must not double-record
  }
  EXPECT_EQ(find_span(sink, "early").count, 1u);
}

TEST_F(TraceTest, SpansNestPerThreadUnderParallelFor) {
  obs::Sink sink;
  constexpr std::size_t kIters = 512;
  {
    obs::ScopedSink scoped(&sink);
    LSI_OBS_SPAN(parent, "par.outer");
    util::parallel_for(
        0, kIters,
        [&](std::size_t) { LSI_OBS_SPAN(span, "par.work"); },
        /*grain=*/8);
  }
  const auto work = find_span(sink, "par.work");
  EXPECT_EQ(work.count, kIters);  // no lost or double-counted iterations
  EXPECT_EQ(work.latency.count, kIters);
  // Worker-thread spans have no parent on their own thread, so the outer
  // span's self time never goes negative from cross-thread attribution.
  const auto outer = find_span(sink, "par.outer");
  EXPECT_EQ(outer.count, 1u);
  EXPECT_GE(outer.self_seconds, 0.0);
}

TEST_F(TraceTest, CountAndGaugeHelpersHitTheActiveSink) {
  obs::Sink sink;
  {
    obs::ScopedSink scoped(&sink);
    obs::count("events");
    obs::count("events", 9);
    obs::gauge("level", 0.75);
  }
  EXPECT_EQ(sink.metrics().counter("events").value(), 10u);
  EXPECT_EQ(sink.metrics().gauge("level").value(), 0.75);
}

TEST_F(TraceTest, ConcurrentCountersFromWorkersLoseNothing) {
  obs::Sink sink;
  constexpr std::size_t kIters = 20000;
  {
    obs::ScopedSink scoped(&sink);
    util::parallel_for(
        0, kIters, [&](std::size_t) { obs::count("hits"); },
        /*grain=*/64);
  }
  EXPECT_EQ(sink.metrics().counter("hits").value(), kIters);
}

}  // namespace
