// Exporter and schema tests: a populated sink rendered as JSON must satisfy
// the lsi.stats.v1 validator (the exact round-trip CI performs on every
// BENCH_<name>.json), CSV output must carry the same sections, and the
// validator must reject the malformed shapes it exists to catch.

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "obs/export.hpp"
#include "obs/schema.hpp"
#include "obs/trace.hpp"

namespace {

using namespace lsi;

/// A sink exercised the way a pipeline run exercises it.
obs::StatsDoc example_doc() {
  static obs::Sink sink;
  static bool populated = false;
  if (!populated) {
    populated = true;
    obs::ScopedSink scoped(&sink);
    {
      LSI_OBS_SPAN(outer, "build");
      LSI_OBS_SPAN(inner, "build.svd");
    }
    obs::count("lanczos.steps", 42);
    obs::gauge("lanczos.max_residual", 1e-12);
  }
  obs::StatsDoc doc = obs::StatsDoc::from_sink("export_test", sink);
  doc.params.emplace_back("k", 100.0);
  doc.params.emplace_back("quick", 0.0);
  doc.flops.push_back({"lanczos.svd", 1000, 1100});
  return doc;
}

TEST(Export, JsonRoundTripSatisfiesTheValidator) {
  const std::string json = obs::to_json(example_doc());
  const auto status = obs::validate_stats_json(json);
  EXPECT_TRUE(status.ok()) << status.to_string() << "\n" << json;
}

TEST(Export, JsonCarriesEverySection) {
  const std::string json = obs::to_json(example_doc());
  EXPECT_NE(json.find("\"schema\": \"lsi.stats.v1\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"export_test\""), std::string::npos);
  EXPECT_NE(json.find("\"lanczos.steps\": 42"), std::string::npos);
  EXPECT_NE(json.find("lanczos.max_residual"), std::string::npos);
  EXPECT_NE(json.find("\"build.svd\""), std::string::npos);
  EXPECT_NE(json.find("\"predicted\": 1000"), std::string::npos);
  EXPECT_NE(json.find("\"measured\": 1100"), std::string::npos);
}

TEST(Export, CsvCarriesEverySection) {
  std::ostringstream os;
  obs::write_csv(os, example_doc());
  const std::string csv = os.str();
  for (const char* needle :
       {"lanczos.steps", "lanczos.max_residual", "build.svd", "lanczos.svd",
        "k", "42"}) {
    EXPECT_NE(csv.find(needle), std::string::npos) << needle << "\n" << csv;
  }
}

TEST(Export, EmptySinkStillValidates) {
  obs::Sink sink;
  const auto doc = obs::StatsDoc::from_sink("empty", sink);
  EXPECT_TRUE(obs::validate_stats_json(obs::to_json(doc)).ok());
}

TEST(Schema, RejectsMalformedDocuments) {
  const struct {
    const char* label;
    const char* text;
  } cases[] = {
      {"not json at all", "BENCH output garbage"},
      {"truncated", R"({"schema": "lsi.stats.v1", "name": "x")"},
      {"wrong schema tag", R"({"schema": "lsi.stats.v2", "name": "x"})"},
      {"missing name", R"({"schema": "lsi.stats.v1"})"},
      {"non-numeric param",
       R"({"schema": "lsi.stats.v1", "name": "x", "params": {"k": "hi"}})"},
      {"negative counter",
       R"({"schema": "lsi.stats.v1", "name": "x", "counters": {"c": -1}})"},
      {"span missing percentiles",
       R"({"schema": "lsi.stats.v1", "name": "x",
           "spans": [{"name": "s", "count": 1}]})"},
      {"flops row missing measured",
       R"({"schema": "lsi.stats.v1", "name": "x",
           "flops": [{"name": "f", "predicted": 10}]})"},
  };
  for (const auto& c : cases) {
    EXPECT_FALSE(obs::validate_stats_json(c.text).ok()) << c.label;
  }
}

TEST(Schema, AcceptsMinimalDocument) {
  EXPECT_TRUE(obs::validate_stats_json(
                  R"({"schema": "lsi.stats.v1", "name": "minimal"})")
                  .ok());
}

}  // namespace
