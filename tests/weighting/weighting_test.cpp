// Term-weighting tests (Equation 5 machinery).

#include <gtest/gtest.h>

#include <cmath>

#include "la/sparse.hpp"
#include "weighting/weighting.hpp"

namespace {

using namespace lsi::weighting;
using lsi::la::CooBuilder;
using lsi::la::CscMatrix;
using lsi::la::index_t;

CscMatrix sample_counts() {
  // 3 terms x 4 docs:
  //   t0: appears once in every doc (uninformative)
  //   t1: 4 occurrences concentrated in doc 0 (informative)
  //   t2: appears in docs 1 and 2
  CooBuilder b(3, 4);
  for (index_t j = 0; j < 4; ++j) b.add(0, j, 1.0);
  b.add(1, 0, 4.0);
  b.add(2, 1, 1.0);
  b.add(2, 2, 2.0);
  return b.to_csc();
}

TEST(Weighting, RawIsIdentity) {
  auto counts = sample_counts();
  auto w = apply(counts, kRaw);
  EXPECT_EQ(w.nnz(), counts.nnz());
  EXPECT_DOUBLE_EQ(w.at(1, 0), 4.0);
}

TEST(Weighting, BinaryLocal) {
  auto w = apply(sample_counts(), {LocalWeight::kBinary, GlobalWeight::kNone});
  EXPECT_DOUBLE_EQ(w.at(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(w.at(2, 2), 1.0);
  EXPECT_DOUBLE_EQ(w.at(1, 1), 0.0);
}

TEST(Weighting, LogLocal) {
  auto w = apply(sample_counts(), {LocalWeight::kLog, GlobalWeight::kNone});
  EXPECT_NEAR(w.at(1, 0), std::log2(5.0), 1e-12);
  EXPECT_NEAR(w.at(0, 0), 1.0, 1e-12);  // log2(2)
}

TEST(Weighting, AugmentedLocal) {
  auto w =
      apply(sample_counts(), {LocalWeight::kAugmented, GlobalWeight::kNone});
  // Doc 0 max tf = 4: t1 -> 1.0, t0 -> 0.5 + 0.5/4.
  EXPECT_NEAR(w.at(1, 0), 1.0, 1e-12);
  EXPECT_NEAR(w.at(0, 0), 0.625, 1e-12);
}

TEST(Weighting, EntropyGlobalExtremes) {
  auto g = global_weights(sample_counts(), GlobalWeight::kEntropy);
  // t0 is spread perfectly evenly over 4 docs -> entropy weight ~0.
  EXPECT_NEAR(g[0], 0.0, 1e-12);
  // t1 occurs in a single document -> weight 1 (maximally informative).
  EXPECT_NEAR(g[1], 1.0, 1e-12);
  // t2 in between.
  EXPECT_GT(g[2], 0.0);
  EXPECT_LT(g[2], 1.0);
}

TEST(Weighting, IdfOrdersByRarity) {
  auto g = global_weights(sample_counts(), GlobalWeight::kIdf);
  EXPECT_GT(g[1], g[2]);  // df 1 < df 2
  EXPECT_GT(g[2], g[0]);  // df 2 < df 4
  EXPECT_NEAR(g[0], 1.0, 1e-12);  // log2(4/4) + 1
  EXPECT_NEAR(g[1], 3.0, 1e-12);  // log2(4/1) + 1
}

TEST(Weighting, GfIdf) {
  auto g = global_weights(sample_counts(), GlobalWeight::kGfIdf);
  EXPECT_NEAR(g[0], 1.0, 1e-12);   // gf 4 / df 4
  EXPECT_NEAR(g[1], 4.0, 1e-12);   // gf 4 / df 1
  EXPECT_NEAR(g[2], 1.5, 1e-12);   // gf 3 / df 2
}

TEST(Weighting, NormalGlobal) {
  auto g = global_weights(sample_counts(), GlobalWeight::kNormal);
  EXPECT_NEAR(g[0], 0.5, 1e-12);                  // 1/sqrt(4)
  EXPECT_NEAR(g[1], 0.25, 1e-12);                 // 1/sqrt(16)
  EXPECT_NEAR(g[2], 1.0 / std::sqrt(5.0), 1e-12); // 1/sqrt(1+4)
}

TEST(Weighting, ApplyCombinesLocalAndGlobal) {
  auto w = apply(sample_counts(), kLogEntropy);
  auto g = global_weights(sample_counts(), GlobalWeight::kEntropy);
  EXPECT_NEAR(w.at(1, 0), std::log2(5.0) * g[1], 1e-12);
  // t0's entropy weight ~0 wipes its row, and explicit zeros are dropped.
  EXPECT_NEAR(w.at(0, 0), 0.0, 1e-12);
}

TEST(Weighting, ApplyToVectorMatchesMatrixWeighting) {
  auto counts = sample_counts();
  auto g = global_weights(counts, GlobalWeight::kEntropy);
  lsi::la::Vector tf = {1.0, 4.0, 0.0};
  auto wq = apply_to_vector(tf, g, LocalWeight::kLog);
  EXPECT_NEAR(wq[1], std::log2(5.0) * g[1], 1e-12);
  EXPECT_DOUBLE_EQ(wq[2], 0.0);
}

TEST(Weighting, AllSchemesEnumerates20) {
  EXPECT_EQ(all_schemes().size(), 20u);
}

TEST(Weighting, Names) {
  EXPECT_EQ(name(kLogEntropy), "logxentropy");
  EXPECT_EQ(name(kRaw), "tfxnone");
}

TEST(WeightCorrection, SelectsOnlyChangedTerms) {
  auto counts = sample_counts();
  std::vector<double> old_g = {1.0, 1.0, 1.0};
  std::vector<double> new_g = {1.0, 2.0, 1.0};
  auto corr = weight_correction(counts, LocalWeight::kRawTf, old_g, new_g);
  ASSERT_EQ(corr.terms.size(), 1u);
  EXPECT_EQ(corr.terms[0], 1u);
  EXPECT_EQ(corr.y.cols(), 1u);
  EXPECT_DOUBLE_EQ(corr.y(1, 0), 1.0);
  // Z column: delta of row 1 = (2 - 1) * [4 0 0 0].
  EXPECT_DOUBLE_EQ(corr.z(0, 0), 4.0);
  EXPECT_DOUBLE_EQ(corr.z(1, 0), 0.0);
}

TEST(WeightCorrection, YZProductEqualsWeightDelta) {
  // A_new = A_old + Y Z^T must hold exactly.
  auto counts = sample_counts();
  std::vector<double> old_g = {1.0, 1.0, 1.0};
  std::vector<double> new_g = {0.5, 2.0, 1.5};
  auto corr = weight_correction(counts, LocalWeight::kRawTf, old_g, new_g);
  auto delta = lsi::la::multiply_a_bt(corr.y, corr.z);  // m x n
  auto dense = counts.to_dense();
  for (index_t i = 0; i < 3; ++i) {
    for (index_t j = 0; j < 4; ++j) {
      EXPECT_NEAR(delta(i, j), dense(i, j) * (new_g[i] - old_g[i]), 1e-12);
    }
  }
}

}  // namespace
