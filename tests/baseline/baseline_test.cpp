// Baseline retrieval model tests: lexical boolean matching and the SMART
// keyword vector model.

#include <gtest/gtest.h>

#include "baseline/lexical.hpp"
#include "baseline/vector_model.hpp"
#include "data/med_topics.hpp"
#include "weighting/weighting.hpp"

namespace {

using namespace lsi;
using la::index_t;

la::Vector paper_query() {
  la::Vector q(18, 0.0);
  q[0] = 1.0;  // abnormalities
  q[1] = 1.0;  // age
  q[3] = 1.0;  // blood
  return q;
}

TEST(Lexical, PaperSectionThreeTwo) {
  auto hits = baseline::lexical_match(data::table3_counts(), paper_query());
  std::set<std::string> got;
  for (const auto& h : hits) {
    std::string label = "M";
    label += std::to_string(h.doc + 1);
    got.insert(std::move(label));
  }
  EXPECT_EQ(got,
            (std::set<std::string>{"M1", "M8", "M10", "M11", "M12"}));
}

TEST(Lexical, OrdersByOverlapCount) {
  // M8 shares abnormalities + blood (2 terms) and must outrank single-term
  // matches.
  auto hits = baseline::lexical_match(data::table3_counts(), paper_query());
  ASSERT_FALSE(hits.empty());
  EXPECT_EQ(hits[0].doc, 7u);  // M8
  EXPECT_EQ(hits[0].shared_terms, 2u);
  for (std::size_t i = 1; i < hits.size(); ++i) {
    EXPECT_LE(hits[i].shared_terms, hits[i - 1].shared_terms);
  }
}

TEST(Lexical, MinSharedFilters) {
  auto hits =
      baseline::lexical_match(data::table3_counts(), paper_query(), 2);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].doc, 7u);
}

TEST(Lexical, EmptyQueryMatchesNothing) {
  la::Vector q(18, 0.0);
  EXPECT_TRUE(baseline::lexical_match(data::table3_counts(), q).empty());
}

TEST(VectorModel, ExactDocumentQueryScoresOne) {
  auto vsm = baseline::VectorSpaceModel(data::table3_counts());
  // Query identical to column M7 (close + technique... M7 has terms close
  // only among indexed -> use its actual column).
  la::Vector q(18, 0.0);
  const auto dense = data::table3_counts().to_dense();
  for (index_t i = 0; i < 18; ++i) q[i] = dense(i, 6);
  auto ranked = vsm.rank(q);
  ASSERT_FALSE(ranked.empty());
  EXPECT_EQ(ranked[0].doc, 6u);
  EXPECT_NEAR(ranked[0].cosine, 1.0, 1e-12);
}

TEST(VectorModel, ReturnsOnlyOverlappingDocs) {
  auto vsm = baseline::VectorSpaceModel(data::table3_counts());
  auto ranked = vsm.rank(paper_query());
  // Same support as lexical matching: 5 documents.
  EXPECT_EQ(ranked.size(), 5u);
  for (const auto& r : ranked) {
    EXPECT_GT(r.cosine, 0.0);
    EXPECT_LE(r.cosine, 1.0 + 1e-12);
  }
}

TEST(VectorModel, CannotFindM9) {
  // The keyword vector model shares lexical matching's blindness to M9 —
  // the gap LSI closes in the paper's example.
  auto vsm = baseline::VectorSpaceModel(data::table3_counts());
  for (const auto& r : vsm.rank(paper_query())) EXPECT_NE(r.doc, 8u);
}

TEST(VectorModel, WeightingChangesScores) {
  auto raw = baseline::VectorSpaceModel(data::table3_counts());
  auto weighted = baseline::VectorSpaceModel(
      weighting::apply(data::table3_counts(), weighting::kLogEntropy));
  auto r1 = raw.rank(paper_query());
  auto r2 = weighted.rank(paper_query());
  ASSERT_FALSE(r1.empty());
  ASSERT_FALSE(r2.empty());
  bool any_diff = r1.size() != r2.size();
  for (std::size_t i = 0; !any_diff && i < r1.size(); ++i) {
    any_diff = r1[i].doc != r2[i].doc ||
               std::abs(r1[i].cosine - r2[i].cosine) > 1e-9;
  }
  EXPECT_TRUE(any_diff);
}

TEST(VectorModel, ZeroQueryEmpty) {
  auto vsm = baseline::VectorSpaceModel(data::table3_counts());
  la::Vector q(18, 0.0);
  EXPECT_TRUE(vsm.rank(q).empty());
}

}  // namespace
