// Subspace-iteration SVD tests: agreement with Jacobi and Lanczos, the two
// independent solvers cross-validating each other.

#include <gtest/gtest.h>

#include <cmath>

#include "la/jacobi_svd.hpp"
#include "la/lanczos.hpp"
#include "la/subspace.hpp"
#include "data/med_topics.hpp"
#include "synth/sparse_random.hpp"

namespace {

using namespace lsi::la;

TEST(Subspace, MatchesJacobiOnSparse) {
  auto a = lsi::synth::random_sparse_matrix(80, 60, 0.1, 7);
  auto want = jacobi_svd(a.to_dense());
  SubspaceOptions opts;
  opts.k = 6;
  SubspaceStats stats;
  auto got = subspace_svd(a, opts, &stats);
  ASSERT_EQ(got.rank(), 6u);
  EXPECT_TRUE(stats.converged);
  for (index_t i = 0; i < 6; ++i) {
    EXPECT_NEAR(got.s[i], want.s[i], 1e-6 * want.s[0]) << i;
  }
}

TEST(Subspace, AgreesWithLanczos) {
  auto a = lsi::synth::random_sparse_matrix(150, 100, 0.05, 9);
  LanczosOptions lopts;
  lopts.k = 8;
  auto lz = lanczos_svd(a, lopts);
  SubspaceOptions sopts;
  sopts.k = 8;
  auto ss = subspace_svd(a, sopts);
  for (index_t i = 0; i < 8; ++i) {
    EXPECT_NEAR(ss.s[i], lz.s[i], 1e-6 * lz.s[0]) << i;
  }
}

TEST(Subspace, FactorsOrthonormalAndReconstruct) {
  auto a = lsi::synth::random_sparse_matrix(40, 30, 0.2, 11);
  SubspaceOptions opts;
  opts.k = 30;  // full rank
  opts.oversample = 0;
  opts.max_iterations = 600;
  auto got = subspace_svd(a, opts);
  EXPECT_LT(orthonormality_error(got.u), 1e-7);
  EXPECT_LT(orthonormality_error(got.v), 1e-7);
  EXPECT_LT(max_abs_diff(got.reconstruct(), a.to_dense()), 1e-6);
}

TEST(Subspace, ZeroMatrix) {
  CooBuilder b(12, 9);
  SubspaceOptions opts;
  opts.k = 3;
  auto got = subspace_svd(b.to_csc(), opts);
  for (double s : got.s) EXPECT_NEAR(s, 0.0, 1e-12);
}

TEST(Subspace, DeterministicForSeed) {
  auto a = lsi::synth::random_sparse_matrix(50, 40, 0.15, 13);
  SubspaceOptions opts;
  opts.k = 4;
  auto r1 = subspace_svd(a, opts);
  auto r2 = subspace_svd(a, opts);
  EXPECT_EQ(r1.s, r2.s);
  EXPECT_NEAR(max_abs_diff(r1.u, r2.u), 0.0, 0.0);
}

TEST(Subspace, KClampedToRank) {
  auto a = lsi::synth::random_sparse_matrix(10, 5, 0.6, 15);
  SubspaceOptions opts;
  opts.k = 40;
  auto got = subspace_svd(a, opts);
  EXPECT_LE(got.rank(), 5u);
}

TEST(Subspace, StatsPopulated) {
  auto a = lsi::synth::random_sparse_matrix(60, 45, 0.1, 17);
  SubspaceOptions opts;
  opts.k = 5;
  SubspaceStats stats;
  (void)subspace_svd(a, opts, &stats);
  EXPECT_GT(stats.iterations, 0);
  EXPECT_GT(stats.matvecs, 0u);
}

TEST(Subspace, PaperExampleSigma) {
  // Cross-check on the Table 3 matrix: all three solvers must agree.
  const auto& a = lsi::data::table3_counts();
  auto jac = jacobi_svd(a.to_dense());
  SubspaceOptions opts;
  opts.k = 2;
  auto ss = subspace_svd(a, opts);
  EXPECT_NEAR(ss.s[0], jac.s[0], 1e-7);
  EXPECT_NEAR(ss.s[1], jac.s[1], 1e-7);
}

}  // namespace
