// Sparse matrix tests: assembly, format invariants, products vs dense
// references, and structural edits (append rows/cols).

#include <gtest/gtest.h>

#include "la/sparse.hpp"
#include "util/rng.hpp"

namespace {

using namespace lsi::la;

CscMatrix random_sparse(index_t m, index_t n, double density,
                        std::uint64_t seed) {
  lsi::util::Rng rng(seed);
  CooBuilder b(m, n);
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < m; ++i) {
      if (rng.bernoulli(density)) b.add(i, j, rng.normal());
    }
  }
  return b.to_csc();
}

TEST(Coo, MergesDuplicates) {
  CooBuilder b(2, 2);
  b.add(0, 0, 1.0);
  b.add(0, 0, 2.5);
  b.add(1, 1, -1.0);
  auto a = b.to_csc();
  EXPECT_EQ(a.nnz(), 2u);
  EXPECT_DOUBLE_EQ(a.at(0, 0), 3.5);
  EXPECT_DOUBLE_EQ(a.at(1, 1), -1.0);
}

TEST(Coo, DropsCancellingEntries) {
  CooBuilder b(2, 2);
  b.add(0, 1, 2.0);
  b.add(0, 1, -2.0);
  auto a = b.to_csc();
  EXPECT_EQ(a.nnz(), 0u);
  EXPECT_DOUBLE_EQ(a.at(0, 1), 0.0);
}

TEST(Csc, FromDenseRoundTrip) {
  auto d = DenseMatrix::from_rows({{1, 0, 2}, {0, 0, 3}});
  auto s = CscMatrix::from_dense(d);
  EXPECT_EQ(s.nnz(), 3u);
  EXPECT_NEAR(max_abs_diff(s.to_dense(), d), 0.0, 0.0);
}

TEST(Csc, ColumnViewsSortedByRow) {
  auto s = random_sparse(40, 30, 0.2, 5);
  for (index_t j = 0; j < s.cols(); ++j) {
    auto rows = s.col_rows(j);
    for (std::size_t p = 1; p < rows.size(); ++p) {
      EXPECT_LT(rows[p - 1], rows[p]);
    }
  }
}

TEST(Csc, Density) {
  auto d = DenseMatrix::from_rows({{1, 0}, {0, 1}});
  auto s = CscMatrix::from_dense(d);
  EXPECT_DOUBLE_EQ(s.density(), 0.5);
}

TEST(Csc, AtFindsEntriesAndZeros) {
  auto s = random_sparse(25, 17, 0.15, 6);
  auto d = s.to_dense();
  for (index_t j = 0; j < s.cols(); ++j) {
    for (index_t i = 0; i < s.rows(); ++i) {
      EXPECT_DOUBLE_EQ(s.at(i, j), d(i, j));
    }
  }
}

TEST(Csc, AppendCols) {
  auto a = random_sparse(10, 4, 0.3, 7);
  auto b = random_sparse(10, 3, 0.3, 8);
  auto c = a.with_appended_cols(b);
  EXPECT_EQ(c.cols(), 7u);
  EXPECT_EQ(c.nnz(), a.nnz() + b.nnz());
  auto cd = c.to_dense();
  auto ad = a.to_dense();
  auto bd = b.to_dense();
  for (index_t i = 0; i < 10; ++i) {
    for (index_t j = 0; j < 4; ++j) EXPECT_DOUBLE_EQ(cd(i, j), ad(i, j));
    for (index_t j = 0; j < 3; ++j) EXPECT_DOUBLE_EQ(cd(i, 4 + j), bd(i, j));
  }
}

TEST(Csc, AppendRows) {
  auto a = random_sparse(5, 6, 0.3, 9);
  auto b = random_sparse(4, 6, 0.3, 10);
  auto c = a.with_appended_rows(b);
  EXPECT_EQ(c.rows(), 9u);
  auto cd = c.to_dense();
  auto ad = a.to_dense();
  auto bd = b.to_dense();
  for (index_t j = 0; j < 6; ++j) {
    for (index_t i = 0; i < 5; ++i) EXPECT_DOUBLE_EQ(cd(i, j), ad(i, j));
    for (index_t i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(cd(5 + i, j), bd(i, j));
  }
}

TEST(Csc, TransformValuesTouchesOnlyNonzeros) {
  auto d = DenseMatrix::from_rows({{2, 0}, {0, -3}});
  auto s = CscMatrix::from_dense(d);
  auto t = s.transform_values(
      [](index_t, index_t, double v) { return v * v; });
  EXPECT_DOUBLE_EQ(t.at(0, 0), 4.0);
  EXPECT_DOUBLE_EQ(t.at(1, 1), 9.0);
  EXPECT_DOUBLE_EQ(t.at(0, 1), 0.0);
}

class SparseApply
    : public ::testing::TestWithParam<std::tuple<int, int, double>> {};

TEST_P(SparseApply, MatchesDenseReference) {
  auto [m, n, density] = GetParam();
  auto s = random_sparse(m, n, density, 42 + m + n);
  auto d = s.to_dense();
  lsi::util::Rng rng(7);

  Vector x(n), y(m);
  for (double& v : x) v = rng.normal();
  s.apply(x, y);
  auto yref = multiply(d, x);
  for (index_t i = 0; i < static_cast<index_t>(m); ++i) {
    EXPECT_NEAR(y[i], yref[i], 1e-12);
  }

  Vector xt(m), yt(n);
  for (double& v : xt) v = rng.normal();
  s.apply_transpose(xt, yt);
  auto ytref = multiply_transpose(d, xt);
  for (index_t i = 0; i < static_cast<index_t>(n); ++i) {
    EXPECT_NEAR(yt[i], ytref[i], 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(
    ShapesAndDensities, SparseApply,
    ::testing::Values(std::tuple{1, 1, 1.0}, std::tuple{10, 10, 0.0},
                      std::tuple{17, 9, 0.1}, std::tuple{64, 128, 0.05},
                      std::tuple{200, 50, 0.02}, std::tuple{33, 77, 0.5}));

TEST(Operators, CscOperatorForwards) {
  auto s = random_sparse(12, 8, 0.4, 11);
  CscOperator op(s);
  EXPECT_EQ(op.rows(), 12u);
  EXPECT_EQ(op.cols(), 8u);
  Vector x(8, 1.0), y(12, 0.0), yref(12, 0.0);
  op.apply(x, y);
  s.apply(x, yref);
  for (index_t i = 0; i < 12; ++i) EXPECT_DOUBLE_EQ(y[i], yref[i]);
}

TEST(Operators, DenseOperatorMatchesDense) {
  auto d = DenseMatrix::from_rows({{1, 2, 0}, {0, 1, -1}});
  DenseOperator op(d);
  Vector x = {1, 1, 1};
  Vector y(2, 0.0);
  op.apply(x, y);
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[1], 0.0);
  Vector xt = {1, 2};
  Vector yt(3, 0.0);
  op.apply_transpose(xt, yt);
  EXPECT_DOUBLE_EQ(yt[0], 1.0);
  EXPECT_DOUBLE_EQ(yt[1], 4.0);
  EXPECT_DOUBLE_EQ(yt[2], -2.0);
}

}  // namespace
