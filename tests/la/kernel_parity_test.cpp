// Kernel parity/fuzz battery (docs/KERNELS.md): every registered Ops table
// is checked against plain scalar references over an exhaustive sweep of
// tiny shapes (all lengths in [0, 17], hitting every SIMD width boundary,
// remainder path, and the empty/degenerate cases) plus seeded-random large
// shapes that exercise the main vector loops.
//
// The contracts are the precision policy of la/kernels.hpp:
//   * elementwise kernels (axpy, axpy4, axpy_bf16, axpy4_bf16) must be
//     BIT-IDENTICAL to the scalar mul-then-add loop, for every kernel;
//   * reduction kernels (dot, at_b_tile4, at_b_tile1) may reassociate, so
//     they are checked against a compensated reference within a stated ULP
//     bound — and at_b_tile1 must be bit-identical to one at_b_tile4 stream
//     (the property batched-vs-single GEMM parity rides on).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "la/kernels.hpp"
#include "util/rng.hpp"

namespace {

using namespace lsi::la;

/// All kernels registered in this binary (portable always; avx2 when the
/// build has the TU and the CPU can run it).
std::vector<const kern::Ops*> registered_kernels() {
  std::vector<const kern::Ops*> out{&kern::portable()};
  if (kern::cpu_has_avx2() && kern::avx2() != nullptr) {
    out.push_back(kern::avx2());
  }
  return out;
}

std::vector<double> random_vec(std::size_t n, std::uint64_t seed) {
  lsi::util::Rng rng(seed);
  std::vector<double> v(n);
  for (auto& x : v) x = rng.normal();
  return v;
}

std::vector<std::uint16_t> random_bf16(std::size_t n, std::uint64_t seed) {
  lsi::util::Rng rng(seed);
  std::vector<std::uint16_t> v(n);
  for (auto& x : v) x = kern::bf16_from_f64(rng.normal());
  return v;
}

/// Compensated (Kahan) dot product: the high-accuracy reference the
/// reassociating reductions are compared against.
double kahan_dot(const double* x, const double* y, std::size_t n) {
  double sum = 0.0, comp = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double term = x[i] * y[i] - comp;
    const double next = sum + term;
    comp = (next - sum) - term;
    sum = next;
  }
  return sum;
}

double abs_dot(const double* x, const double* y, std::size_t n) {
  double s = 0.0;
  for (std::size_t i = 0; i < n; ++i) s += std::abs(x[i] * y[i]);
  return s;
}

/// Reduction tolerance: reassociation moves the result by at most a few
/// rounding steps of the magnitude sum. 64 eps leaves room for the longest
/// fuzzed length while still catching any real algorithmic divergence.
double reduction_tol(const double* x, const double* y, std::size_t n) {
  constexpr double kEps = 2.220446049250313e-16;
  return 64.0 * kEps * (abs_dot(x, y, n) + 1.0);
}

// --- elementwise: bit-identical across every kernel -------------------------

TEST(KernelParity, AxpyBitIdenticalExhaustive) {
  for (const kern::Ops* ops : registered_kernels()) {
    for (std::size_t n = 0; n <= 17; ++n) {
      const auto x = random_vec(n, 100 + n);
      const auto y0 = random_vec(n, 200 + n);
      const double a = -1.375;
      std::vector<double> want = y0;
      for (std::size_t i = 0; i < n; ++i) want[i] += a * x[i];
      std::vector<double> got = y0;
      ops->axpy(a, x.data(), got.data(), n);
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(want[i], got[i]) << ops->name << " n=" << n << " i=" << i;
      }
    }
  }
}

TEST(KernelParity, Axpy4BitIdenticalToFourAxpys) {
  for (const kern::Ops* ops : registered_kernels()) {
    for (std::size_t n : {0ul, 1ul, 3ul, 4ul, 5ul, 8ul, 17ul, 1031ul}) {
      const auto x = random_vec(n, 300 + n);
      const double a4[4] = {0.5, -2.25, 1e-3, 7.0};
      std::vector<std::vector<double>> want(4), got(4);
      for (int t = 0; t < 4; ++t) {
        want[t] = random_vec(n, 400 + n + t);
        got[t] = want[t];
        // Reference: the scalar chain, one stream at a time.
        for (std::size_t i = 0; i < n; ++i) want[t][i] += a4[t] * x[i];
      }
      ops->axpy4(a4, x.data(), got[0].data(), got[1].data(), got[2].data(),
                 got[3].data(), n);
      for (int t = 0; t < 4; ++t) {
        for (std::size_t i = 0; i < n; ++i) {
          ASSERT_EQ(want[t][i], got[t][i])
              << ops->name << " n=" << n << " t=" << t << " i=" << i;
        }
      }
    }
  }
}

TEST(KernelParity, AxpyBf16BitIdenticalExhaustive) {
  for (const kern::Ops* ops : registered_kernels()) {
    for (std::size_t n = 0; n <= 17; ++n) {
      const auto x = random_bf16(n, 500 + n);
      const float a = 0.3125f;
      std::vector<float> want(n), got(n);
      for (std::size_t i = 0; i < n; ++i) {
        want[i] = static_cast<float>(i) * 0.25f;
        got[i] = want[i];
        want[i] += a * kern::bf16_to_f32(x[i]);
      }
      ops->axpy_bf16(a, x.data(), got.data(), n);
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(want[i], got[i]) << ops->name << " n=" << n << " i=" << i;
      }
    }
  }
}

TEST(KernelParity, Axpy4Bf16BitIdenticalLarge) {
  for (const kern::Ops* ops : registered_kernels()) {
    for (std::size_t n : {0ul, 1ul, 7ul, 8ul, 9ul, 16ul, 17ul, 2049ul}) {
      const auto x = random_bf16(n, 600 + n);
      const float a4[4] = {1.0f, -0.5f, 3.0f, 0.125f};
      std::vector<std::vector<float>> want(4), got(4);
      for (int t = 0; t < 4; ++t) {
        want[t].assign(n, 0.5f * static_cast<float>(t));
        got[t] = want[t];
        for (std::size_t i = 0; i < n; ++i) {
          want[t][i] += a4[t] * kern::bf16_to_f32(x[i]);
        }
      }
      ops->axpy4_bf16(a4, x.data(), got[0].data(), got[1].data(),
                      got[2].data(), got[3].data(), n);
      for (int t = 0; t < 4; ++t) {
        for (std::size_t i = 0; i < n; ++i) {
          ASSERT_EQ(want[t][i], got[t][i])
              << ops->name << " n=" << n << " t=" << t << " i=" << i;
        }
      }
    }
  }
}

// --- reductions: ULP-bounded, deterministic per kernel ----------------------

TEST(KernelParity, CosNormBitIdenticalExhaustive) {
  // Multiplication and division are correctly rounded in scalar and packed
  // form, so the cosine-normalization kernels claim full bit identity —
  // including the zero-norm guard lanes and qn == 0 batches.
  for (const kern::Ops* ops : registered_kernels()) {
    for (std::size_t n = 0; n <= 17; ++n) {
      for (const double qn : {0.0, 0.8125}) {
        const auto num = random_vec(n, 600 + n);
        auto dn = random_vec(n, 700 + n);
        for (std::size_t i = 0; i < n; i += 3) dn[i] = 0.0;  // guard lanes
        std::vector<double> want(n), got = num;
        for (std::size_t i = 0; i < n; ++i) {
          want[i] =
              (qn == 0.0 || dn[i] == 0.0) ? 0.0 : num[i] / (qn * dn[i]);
        }
        ops->cos_norm(qn, dn.data(), got.data(), n);
        for (std::size_t i = 0; i < n; ++i) {
          ASSERT_EQ(want[i], got[i])
              << ops->name << " qn=" << qn << " n=" << n << " i=" << i;
        }
      }
    }
    // Large length: exercises the main vector loop plus remainder.
    const std::size_t n = 2053;
    const auto num = random_vec(n, 61);
    auto dn = random_vec(n, 62);
    for (std::size_t i = 0; i < n; i += 97) dn[i] = 0.0;
    const double qn = 1.75;
    std::vector<double> want(n), got = num;
    for (std::size_t i = 0; i < n; ++i) {
      want[i] = (dn[i] == 0.0) ? 0.0 : num[i] / (qn * dn[i]);
    }
    ops->cos_norm(qn, dn.data(), got.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(want[i], got[i]) << ops->name << " i=" << i;
    }
  }
}

TEST(KernelParity, CosNormF32BitIdenticalExhaustive) {
  for (const kern::Ops* ops : registered_kernels()) {
    for (std::size_t n : {0ul, 1ul, 4ul, 5ul, 7ul, 8ul, 17ul, 2053ul}) {
      for (const double qn : {0.0, 2.5}) {
        lsi::util::Rng rng(800 + n);
        std::vector<float> acc(n);
        for (auto& a : acc) a = static_cast<float>(rng.normal());
        auto dn = random_vec(n, 900 + n);
        for (std::size_t i = 0; i < n; i += 5) dn[i] = 0.0;
        std::vector<double> want(n), got(n, -1.0);
        for (std::size_t i = 0; i < n; ++i) {
          want[i] = (qn == 0.0 || dn[i] == 0.0)
                        ? 0.0
                        : static_cast<double>(acc[i]) / (qn * dn[i]);
        }
        ops->cos_norm_f32(qn, acc.data(), dn.data(), got.data(), n);
        for (std::size_t i = 0; i < n; ++i) {
          ASSERT_EQ(want[i], got[i])
              << ops->name << " qn=" << qn << " n=" << n << " i=" << i;
        }
      }
    }
  }
}

TEST(KernelParity, DotWithinUlpBoundExhaustive) {
  for (const kern::Ops* ops : registered_kernels()) {
    for (std::size_t n = 0; n <= 17; ++n) {
      const auto x = random_vec(n, 700 + n);
      const auto y = random_vec(n, 800 + n);
      const double got = ops->dot(x.data(), y.data(), n);
      const double want = kahan_dot(x.data(), y.data(), n);
      ASSERT_NEAR(got, want, reduction_tol(x.data(), y.data(), n))
          << ops->name << " n=" << n;
    }
  }
}

TEST(KernelParity, DotFuzzLargeShapes) {
  lsi::util::Rng shape_rng(0xD07F77);
  for (int round = 0; round < 24; ++round) {
    const std::size_t n = 1 + shape_rng.uniform_index(4096);
    const auto x = random_vec(n, 900 + round);
    const auto y = random_vec(n, 1000 + round);
    const double want = kahan_dot(x.data(), y.data(), n);
    const double tol = reduction_tol(x.data(), y.data(), n);
    for (const kern::Ops* ops : registered_kernels()) {
      const double got = ops->dot(x.data(), y.data(), n);
      ASSERT_NEAR(got, want, tol) << ops->name << " n=" << n;
      // Determinism: the same kernel over the same input is exactly stable.
      ASSERT_EQ(got, ops->dot(x.data(), y.data(), n)) << ops->name;
    }
  }
}

TEST(KernelParity, Tile1IsOneTile4Stream) {
  // at_b_tile1 must compute exactly one stream of at_b_tile4's chain: the
  // remainder columns of the blocked GEMM then agree bit-for-bit with the
  // grouped columns, making the result independent of panel width.
  for (const kern::Ops* ops : registered_kernels()) {
    for (std::size_t m : {0ul, 1ul, 2ul, 3ul, 7ul, 8ul, 9ul, 17ul, 515ul}) {
      const auto a = random_vec(m, 1100 + m);
      std::vector<std::vector<double>> b(4);
      for (int t = 0; t < 4; ++t) b[t] = random_vec(m, 1200 + m + t);
      for (std::size_t lo : {std::size_t{0}, m / 2}) {
        double tile[4];
        ops->at_b_tile4(a.data(), b[0].data(), b[1].data(), b[2].data(),
                        b[3].data(), lo, m, tile);
        for (int t = 0; t < 4; ++t) {
          const double lone = ops->at_b_tile1(a.data(), b[t].data(), lo, m);
          ASSERT_EQ(tile[t], lone)
              << ops->name << " m=" << m << " lo=" << lo << " t=" << t;
        }
      }
    }
  }
}

TEST(KernelParity, TileReductionsWithinUlpBound) {
  for (const kern::Ops* ops : registered_kernels()) {
    for (std::size_t m = 0; m <= 17; ++m) {
      const auto a = random_vec(m, 1300 + m);
      std::vector<std::vector<double>> b(4);
      for (int t = 0; t < 4; ++t) b[t] = random_vec(m, 1400 + m + t);
      double tile[4];
      ops->at_b_tile4(a.data(), b[0].data(), b[1].data(), b[2].data(),
                      b[3].data(), 0, m, tile);
      for (int t = 0; t < 4; ++t) {
        const double want = kahan_dot(a.data(), b[t].data(), m);
        ASSERT_NEAR(tile[t], want, reduction_tol(a.data(), b[t].data(), m))
            << ops->name << " m=" << m << " t=" << t;
      }
    }
  }
}

TEST(KernelParity, EmptyAndDegenerateRangesAreZero) {
  const auto a = random_vec(16, 1);
  const auto b = random_vec(16, 2);
  for (const kern::Ops* ops : registered_kernels()) {
    EXPECT_EQ(ops->dot(a.data(), b.data(), 0), 0.0) << ops->name;
    EXPECT_EQ(ops->at_b_tile1(a.data(), b.data(), 5, 5), 0.0) << ops->name;
    double tile[4] = {1, 1, 1, 1};
    ops->at_b_tile4(a.data(), b.data(), b.data(), b.data(), b.data(), 7, 7,
                    tile);
    for (int t = 0; t < 4; ++t) EXPECT_EQ(tile[t], 0.0) << ops->name;
    // n == 0 elementwise calls must not touch the output.
    double y = 42.0;
    ops->axpy(2.0, a.data(), &y, 0);
    EXPECT_EQ(y, 42.0) << ops->name;
  }
}

// --- cross-kernel: elementwise results agree between kernels ----------------

TEST(KernelParity, ElementwiseAgreesAcrossKernels) {
  const auto kernels = registered_kernels();
  if (kernels.size() < 2) GTEST_SKIP() << "only one kernel registered";
  for (std::size_t n : {1ul, 4ul, 5ul, 16ul, 17ul, 777ul}) {
    const auto x = random_vec(n, 1500 + n);
    const auto xb = random_bf16(n, 1600 + n);
    const auto y0 = random_vec(n, 1700 + n);
    std::vector<std::vector<double>> y(kernels.size(), y0);
    std::vector<std::vector<float>> yf(kernels.size(),
                                       std::vector<float>(n, 0.25f));
    for (std::size_t ki = 0; ki < kernels.size(); ++ki) {
      kernels[ki]->axpy(-0.75, x.data(), y[ki].data(), n);
      kernels[ki]->axpy_bf16(1.5f, xb.data(), yf[ki].data(), n);
    }
    for (std::size_t ki = 1; ki < kernels.size(); ++ki) {
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(y[0][i], y[ki][i]) << kernels[ki]->name << " i=" << i;
        ASSERT_EQ(yf[0][i], yf[ki][i]) << kernels[ki]->name << " i=" << i;
      }
    }
  }
}

}  // namespace
