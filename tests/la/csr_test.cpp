// CSR format tests: conversion fidelity and product agreement with CSC.

#include <gtest/gtest.h>

#include "la/sparse.hpp"
#include "synth/sparse_random.hpp"
#include "util/rng.hpp"

namespace {

using namespace lsi::la;

TEST(Csr, ConversionPreservesEntries) {
  auto csc = lsi::synth::random_sparse_matrix(30, 20, 0.2, 1);
  auto csr = CsrMatrix::from_csc(csc);
  EXPECT_EQ(csr.rows(), csc.rows());
  EXPECT_EQ(csr.cols(), csc.cols());
  EXPECT_EQ(csr.nnz(), csc.nnz());
  EXPECT_LT(max_abs_diff(csr.to_dense(), csc.to_dense()), 1e-15);
}

TEST(Csr, RowViewsSortedByColumn) {
  auto csr = CsrMatrix::from_csc(
      lsi::synth::random_sparse_matrix(25, 40, 0.15, 2));
  for (index_t i = 0; i < csr.rows(); ++i) {
    auto cols = csr.row_cols(i);
    for (std::size_t p = 1; p < cols.size(); ++p) {
      EXPECT_LT(cols[p - 1], cols[p]);
    }
  }
}

TEST(Csr, EmptyMatrix) {
  CooBuilder b(5, 7);
  auto csr = CsrMatrix::from_csc(b.to_csc());
  EXPECT_EQ(csr.nnz(), 0u);
  for (index_t i = 0; i < 5; ++i) EXPECT_TRUE(csr.row_cols(i).empty());
}

class CsrApply : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(CsrApply, ProductsMatchCsc) {
  auto [m, n] = GetParam();
  auto csc = lsi::synth::random_sparse_matrix(m, n, 0.2, 10 + m);
  auto csr = CsrMatrix::from_csc(csc);
  lsi::util::Rng rng(3);

  Vector x(n), y_csr(m), y_csc(m);
  for (double& v : x) v = rng.normal();
  csr.apply(x, y_csr);
  csc.apply(x, y_csc);
  for (index_t i = 0; i < static_cast<index_t>(m); ++i) {
    EXPECT_NEAR(y_csr[i], y_csc[i], 1e-12);
  }

  Vector xt(m), yt_csr(n), yt_csc(n);
  for (double& v : xt) v = rng.normal();
  csr.apply_transpose(xt, yt_csr);
  csc.apply_transpose(xt, yt_csc);
  for (index_t i = 0; i < static_cast<index_t>(n); ++i) {
    EXPECT_NEAR(yt_csr[i], yt_csc[i], 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, CsrApply,
                         ::testing::Values(std::pair{1, 1}, std::pair{13, 9},
                                           std::pair{9, 13},
                                           std::pair{64, 48},
                                           std::pair{100, 3}));

}  // namespace
