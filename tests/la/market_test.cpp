// MatrixMarket I/O tests.

#include <gtest/gtest.h>

#include <sstream>

#include "la/market.hpp"
#include "synth/sparse_random.hpp"

namespace {

using namespace lsi::la;

TEST(MatrixMarket, RoundTrip) {
  auto a = lsi::synth::random_sparse_matrix(23, 17, 0.2, 3);
  std::stringstream buffer;
  write_matrix_market(buffer, a);
  auto b = read_matrix_market(buffer);
  EXPECT_EQ(b.rows(), a.rows());
  EXPECT_EQ(b.cols(), a.cols());
  EXPECT_EQ(b.nnz(), a.nnz());
  EXPECT_LT(max_abs_diff(a.to_dense(), b.to_dense()), 1e-15);
}

TEST(MatrixMarket, EmptyMatrix) {
  CooBuilder builder(4, 6);
  std::stringstream buffer;
  write_matrix_market(buffer, builder.to_csc());
  auto b = read_matrix_market(buffer);
  EXPECT_EQ(b.rows(), 4u);
  EXPECT_EQ(b.cols(), 6u);
  EXPECT_EQ(b.nnz(), 0u);
}

TEST(MatrixMarket, ParsesHandWrittenInput) {
  std::stringstream buffer(
      "%%MatrixMarket matrix coordinate real general\n"
      "% a comment line\n"
      "3 2 3\n"
      "1 1 1.5\n"
      "3 1 -2\n"
      "2 2 4\n");
  auto a = read_matrix_market(buffer);
  EXPECT_DOUBLE_EQ(a.at(0, 0), 1.5);
  EXPECT_DOUBLE_EQ(a.at(2, 0), -2.0);
  EXPECT_DOUBLE_EQ(a.at(1, 1), 4.0);
  EXPECT_EQ(a.nnz(), 3u);
}

TEST(MatrixMarket, SumsDuplicates) {
  std::stringstream buffer(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 2\n"
      "1 1 1.0\n"
      "1 1 2.5\n");
  auto a = read_matrix_market(buffer);
  EXPECT_DOUBLE_EQ(a.at(0, 0), 3.5);
  EXPECT_EQ(a.nnz(), 1u);
}

TEST(MatrixMarket, RejectsBadHeader) {
  std::stringstream buffer("%%MatrixMarket matrix array real general\n2 2\n");
  EXPECT_THROW(read_matrix_market(buffer), std::runtime_error);
}

TEST(MatrixMarket, RejectsOutOfRangeIndex) {
  std::stringstream buffer(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 1\n"
      "3 1 1.0\n");
  EXPECT_THROW(read_matrix_market(buffer), std::runtime_error);
}

TEST(MatrixMarket, RejectsTruncatedEntries) {
  std::stringstream buffer(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 2\n"
      "1 1 1.0\n");
  EXPECT_THROW(read_matrix_market(buffer), std::runtime_error);
}

}  // namespace
