// Householder QR tests.

#include <gtest/gtest.h>

#include "la/qr.hpp"
#include "util/rng.hpp"

namespace {

using namespace lsi::la;

DenseMatrix random_matrix(index_t m, index_t n, std::uint64_t seed) {
  lsi::util::Rng rng(seed);
  DenseMatrix a(m, n);
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < m; ++i) a(i, j) = rng.normal();
  }
  return a;
}

class QrShapes : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(QrShapes, ReconstructsAndOrthogonal) {
  auto [m, n] = GetParam();
  auto a = random_matrix(m, n, 17 + m * 31 + n);
  auto f = qr_decompose(a);
  EXPECT_EQ(f.q.rows(), static_cast<index_t>(m));
  EXPECT_EQ(f.q.cols(), static_cast<index_t>(std::min(m, n)));
  EXPECT_LT(orthonormality_error(f.q), 1e-12);
  EXPECT_LT(max_abs_diff(multiply(f.q, f.r), a), 1e-11);
  // R upper triangular.
  for (index_t i = 0; i < f.r.rows(); ++i) {
    for (index_t j = 0; j < std::min<index_t>(i, f.r.cols()); ++j) {
      EXPECT_NEAR(f.r(i, j), 0.0, 1e-12);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, QrShapes,
                         ::testing::Values(std::pair{1, 1}, std::pair{5, 5},
                                           std::pair{10, 4}, std::pair{4, 10},
                                           std::pair{50, 20},
                                           std::pair{3, 1}));

TEST(Qr, RankDeficientZeroColumns) {
  // Two identical columns: the second must be flagged as dependent.
  DenseMatrix a(4, 2);
  for (index_t i = 0; i < 4; ++i) {
    a(i, 0) = static_cast<double>(i + 1);
    a(i, 1) = 2.0 * static_cast<double>(i + 1);
  }
  auto q = orthonormal_columns(a);
  EXPECT_NEAR(norm2(q.col(0)), 1.0, 1e-12);
  EXPECT_NEAR(norm2(q.col(1)), 0.0, 1e-12);
}

TEST(Qr, OrthonormalColumnsSpanInput) {
  auto a = random_matrix(8, 3, 99);
  auto q = orthonormal_columns(a);
  // Projecting A onto span(Q) must reproduce A.
  auto coeffs = multiply_at_b(q, a);
  EXPECT_LT(max_abs_diff(multiply(q, coeffs), a), 1e-11);
}

TEST(Qr, ZeroMatrix) {
  DenseMatrix a(3, 2);
  auto f = qr_decompose(a);
  EXPECT_LT(f.r.max_abs(), 1e-300);
}

}  // namespace
