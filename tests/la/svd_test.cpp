// One-sided Jacobi SVD tests: exactness on known matrices, factor
// orthogonality, reconstruction, sign/sort conventions, degenerate shapes.

#include <gtest/gtest.h>

#include <cmath>

#include "la/jacobi_svd.hpp"
#include "util/rng.hpp"

namespace {

using namespace lsi::la;

DenseMatrix random_matrix(index_t m, index_t n, std::uint64_t seed) {
  lsi::util::Rng rng(seed);
  DenseMatrix a(m, n);
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < m; ++i) a(i, j) = rng.normal();
  }
  return a;
}

TEST(JacobiSvd, DiagonalMatrix) {
  auto a = DenseMatrix::from_rows({{3, 0}, {0, 4}});
  auto s = jacobi_svd(a);
  ASSERT_EQ(s.s.size(), 2u);
  EXPECT_NEAR(s.s[0], 4.0, 1e-13);
  EXPECT_NEAR(s.s[1], 3.0, 1e-13);
}

TEST(JacobiSvd, KnownTwoByTwo) {
  // [[1, 1], [0, 1]] has singular values sqrt((3 +/- sqrt 5)/2).
  auto a = DenseMatrix::from_rows({{1, 1}, {0, 1}});
  auto s = jacobi_svd(a);
  EXPECT_NEAR(s.s[0], std::sqrt((3.0 + std::sqrt(5.0)) / 2.0), 1e-13);
  EXPECT_NEAR(s.s[1], std::sqrt((3.0 - std::sqrt(5.0)) / 2.0), 1e-13);
}

TEST(JacobiSvd, SingularValuesDescendAndNonnegative) {
  auto s = jacobi_svd(random_matrix(12, 8, 3));
  for (std::size_t i = 1; i < s.s.size(); ++i) {
    EXPECT_LE(s.s[i], s.s[i - 1]);
    EXPECT_GE(s.s[i], 0.0);
  }
}

TEST(JacobiSvd, SignConvention) {
  auto s = jacobi_svd(random_matrix(9, 5, 4));
  for (index_t j = 0; j < s.rank(); ++j) {
    auto uj = s.u.col(j);
    double best = 0.0;
    for (double v : uj) best = std::max(best, std::fabs(v));
    bool found_positive_max = false;
    for (double v : uj) {
      if (std::fabs(std::fabs(v) - best) < 1e-15 && v > 0) {
        found_positive_max = true;
      }
    }
    EXPECT_TRUE(found_positive_max) << "column " << j;
  }
}

TEST(JacobiSvd, RankDeficient) {
  // Rank-1 matrix: second singular value must be ~0.
  DenseMatrix a(4, 3);
  for (index_t i = 0; i < 4; ++i) {
    for (index_t j = 0; j < 3; ++j) {
      a(i, j) = static_cast<double>((i + 1) * (j + 1));
    }
  }
  auto s = jacobi_svd(a);
  EXPECT_GT(s.s[0], 1.0);
  EXPECT_NEAR(s.s[1], 0.0, 1e-10);
  EXPECT_NEAR(s.s[2], 0.0, 1e-10);
}

TEST(JacobiSvd, EmptyMatrix) {
  auto s = jacobi_svd(DenseMatrix{});
  EXPECT_EQ(s.rank(), 0u);
}

TEST(JacobiSvd, TruncateKeepsLargest) {
  auto s = jacobi_svd(random_matrix(10, 6, 5));
  const double s0 = s.s[0];
  s.truncate(2);
  EXPECT_EQ(s.rank(), 2u);
  EXPECT_EQ(s.u.cols(), 2u);
  EXPECT_EQ(s.v.cols(), 2u);
  EXPECT_DOUBLE_EQ(s.s[0], s0);
}

TEST(JacobiSvd, EckartYoungErrorEqualsNextSigma) {
  // Theorem 2.2 of the paper: ||A - A_k||_2 = sigma_{k+1} and
  // ||A - A_k||_F^2 = sum_{i>k} sigma_i^2.
  auto a = random_matrix(10, 7, 6);
  auto s = jacobi_svd(a);
  auto sk = s;
  sk.truncate(3);
  auto diff = a;
  diff.add_scaled(sk.reconstruct(), -1.0);
  auto resid = jacobi_svd(diff);
  EXPECT_NEAR(resid.s[0], s.s[3], 1e-10);
  double tail = 0.0;
  for (std::size_t i = 3; i < s.s.size(); ++i) tail += s.s[i] * s.s[i];
  EXPECT_NEAR(diff.frobenius_norm() * diff.frobenius_norm(), tail, 1e-9);
}

class SvdShapes : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(SvdShapes, FactorsOrthogonalAndReconstruct) {
  auto [m, n] = GetParam();
  auto a = random_matrix(m, n, 1000 + m * 7 + n);
  auto s = jacobi_svd(a);
  EXPECT_EQ(s.rank(), static_cast<index_t>(std::min(m, n)));
  EXPECT_LT(orthonormality_error(s.u), 1e-11);
  EXPECT_LT(orthonormality_error(s.v), 1e-11);
  EXPECT_LT(max_abs_diff(s.reconstruct(), a), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Shapes, SvdShapes,
                         ::testing::Values(std::pair{1, 1}, std::pair{2, 2},
                                           std::pair{7, 3}, std::pair{3, 7},
                                           std::pair{20, 20},
                                           std::pair{40, 11},
                                           std::pair{11, 40}));

TEST(SvdTypes, SortDescendingPermutesCoherently) {
  SvdResult s;
  s.u = DenseMatrix::from_rows({{1, 0}, {0, 1}});
  s.v = DenseMatrix::from_rows({{1, 0}, {0, 1}});
  s.s = {1.0, 5.0};
  sort_descending(s);
  EXPECT_DOUBLE_EQ(s.s[0], 5.0);
  EXPECT_DOUBLE_EQ(s.u(1, 0), 1.0);  // old column 1 now first
  EXPECT_DOUBLE_EQ(s.v(1, 0), 1.0);
}

TEST(SvdTypes, NormalizeSignsFlipsPairs) {
  SvdResult s;
  s.u = DenseMatrix::from_rows({{-2}, {1}});
  s.v = DenseMatrix::from_rows({{3}, {-1}});
  s.s = {1.0};
  normalize_signs(s);
  EXPECT_DOUBLE_EQ(s.u(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(s.v(0, 0), -3.0);
}

TEST(SvdTypes, SingularValuesMatchGramEigenvalues) {
  // sigma_i^2 are the eigenvalues of A^T A (Section 2 of the paper).
  auto a = random_matrix(9, 4, 77);
  auto s = jacobi_svd(a);
  auto g = multiply_at_b(a, a);
  // Power iteration on G for the top eigenvalue as an independent check.
  lsi::util::Rng rng(3);
  Vector x(4);
  for (double& v : x) v = rng.normal();
  for (int it = 0; it < 500; ++it) {
    x = multiply(g, x);
    normalize(x);
  }
  auto gx = multiply(g, x);
  const double lambda = dot(x, gx);
  EXPECT_NEAR(std::sqrt(lambda), s.s[0], 1e-8);
}

}  // namespace
