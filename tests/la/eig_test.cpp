// Symmetric tridiagonal / dense eigensolver tests.

#include <gtest/gtest.h>

#include <cmath>

#include "la/tridiag_eig.hpp"
#include "util/rng.hpp"

namespace {

using namespace lsi::la;

TEST(TridiagEig, Empty) {
  auto e = tridiag_eigen({}, {});
  EXPECT_TRUE(e.values.empty());
}

TEST(TridiagEig, Scalar) {
  auto e = tridiag_eigen({3.5}, {});
  ASSERT_EQ(e.values.size(), 1u);
  EXPECT_DOUBLE_EQ(e.values[0], 3.5);
}

TEST(TridiagEig, TwoByTwoKnown) {
  // [[2, 1], [1, 2]] -> eigenvalues 1 and 3.
  auto e = tridiag_eigen({2.0, 2.0}, {1.0});
  ASSERT_EQ(e.values.size(), 2u);
  EXPECT_NEAR(e.values[0], 1.0, 1e-12);
  EXPECT_NEAR(e.values[1], 3.0, 1e-12);
}

TEST(TridiagEig, DiagonalMatrixSortsAscending) {
  auto e = tridiag_eigen({5.0, -1.0, 2.0}, {0.0, 0.0});
  ASSERT_EQ(e.values.size(), 3u);
  EXPECT_NEAR(e.values[0], -1.0, 1e-12);
  EXPECT_NEAR(e.values[1], 2.0, 1e-12);
  EXPECT_NEAR(e.values[2], 5.0, 1e-12);
}

TEST(TridiagEig, LaplacianKnownSpectrum) {
  // 1-D Laplacian: eigenvalues 2 - 2 cos(pi i / (n+1)).
  const std::size_t n = 12;
  std::vector<double> d(n, 2.0), off(n - 1, -1.0);
  auto e = tridiag_eigen(d, off);
  for (std::size_t i = 0; i < n; ++i) {
    const double expect =
        2.0 - 2.0 * std::cos(M_PI * static_cast<double>(i + 1) /
                             static_cast<double>(n + 1));
    EXPECT_NEAR(e.values[i], expect, 1e-10);
  }
}

TEST(TridiagEig, ReconstructsMatrix) {
  lsi::util::Rng rng(5);
  const std::size_t n = 20;
  std::vector<double> d(n), off(n - 1);
  for (auto& x : d) x = rng.normal();
  for (auto& x : off) x = rng.normal();

  auto e = tridiag_eigen(d, off);
  EXPECT_LT(orthonormality_error(e.vectors), 1e-10);

  // Z diag(w) Z^T must reproduce T.
  auto zd = scale_cols(e.vectors, e.values);
  auto t = multiply_a_bt(zd, e.vectors);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double expect = 0.0;
      if (i == j) expect = d[i];
      if (j + 1 == i) expect = off[j];
      if (i + 1 == j) expect = off[i];
      EXPECT_NEAR(t(i, j), expect, 1e-9);
    }
  }
}

TEST(SymmetricEigen, RandomSymmetricReconstructs) {
  lsi::util::Rng rng(9);
  const index_t n = 15;
  DenseMatrix a(n, n);
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j <= i; ++j) {
      const double v = rng.normal();
      a(i, j) = v;
      a(j, i) = v;
    }
  }
  auto e = symmetric_eigen(a);
  EXPECT_LT(orthonormality_error(e.vectors), 1e-9);
  auto zd = scale_cols(e.vectors, e.values);
  auto back = multiply_a_bt(zd, e.vectors);
  EXPECT_LT(max_abs_diff(back, a), 1e-8);
  for (std::size_t i = 1; i < e.values.size(); ++i) {
    EXPECT_LE(e.values[i - 1], e.values[i]);
  }
}

TEST(SymmetricEigen, GramMatrixIsPsd) {
  lsi::util::Rng rng(21);
  DenseMatrix b(10, 6);
  for (index_t j = 0; j < 6; ++j) {
    for (index_t i = 0; i < 10; ++i) b(i, j) = rng.normal();
  }
  auto g = multiply_at_b(b, b);
  auto e = symmetric_eigen(g);
  for (double v : e.values) EXPECT_GT(v, -1e-9);
}

}  // namespace
