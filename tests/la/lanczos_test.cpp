// Lanczos truncated-SVD tests: agreement with the dense Jacobi reference,
// convergence reporting, determinism, and degenerate inputs.

#include <gtest/gtest.h>

#include <cmath>

#include "la/jacobi_svd.hpp"
#include "la/lanczos.hpp"
#include "util/rng.hpp"

namespace {

using namespace lsi::la;

DenseMatrix random_matrix(index_t m, index_t n, std::uint64_t seed) {
  lsi::util::Rng rng(seed);
  DenseMatrix a(m, n);
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < m; ++i) a(i, j) = rng.normal();
  }
  return a;
}

CscMatrix random_sparse(index_t m, index_t n, double density,
                        std::uint64_t seed) {
  lsi::util::Rng rng(seed);
  CooBuilder b(m, n);
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < m; ++i) {
      if (rng.bernoulli(density)) b.add(i, j, rng.normal());
    }
  }
  return b.to_csc();
}

/// |cos angle| between corresponding columns must be ~1 (subspace match up
/// to sign, which normalize_signs pins, so we check actual equality).
void expect_triplets_match(const SvdResult& got, const SvdResult& want,
                           index_t k, double tol) {
  ASSERT_GE(got.rank(), k);
  ASSERT_GE(want.rank(), k);
  for (index_t i = 0; i < k; ++i) {
    EXPECT_NEAR(got.s[i], want.s[i], tol * std::max(1.0, want.s[0]))
        << "sigma " << i;
    // Compare singular subspaces via |u_got . u_want| to stay robust if two
    // singular values are nearly equal.
    const double uangle = std::fabs(dot(got.u.col(i), want.u.col(i)));
    const double vangle = std::fabs(dot(got.v.col(i), want.v.col(i)));
    if (i + 1 < want.rank() &&
        want.s[i] - want.s[i + 1] > 1e-3 * want.s[0]) {
      EXPECT_GT(uangle, 1.0 - 1e-6) << "u " << i;
      EXPECT_GT(vangle, 1.0 - 1e-6) << "v " << i;
    }
  }
}

TEST(Lanczos, MatchesJacobiOnDenseOperator) {
  auto a = random_matrix(60, 40, 11);
  auto want = jacobi_svd(a);
  DenseOperator op(a);
  LanczosOptions opts;
  opts.k = 10;
  LanczosStats stats;
  auto got = lanczos_svd(op, opts, &stats);
  ASSERT_EQ(got.rank(), 10u);
  expect_triplets_match(got, want, 10, 1e-8);
  EXPECT_GE(stats.converged, 10u);
  EXPECT_GT(stats.matvecs, 0u);
}

TEST(Lanczos, MatchesJacobiOnSparse) {
  auto s = random_sparse(120, 80, 0.08, 13);
  auto want = jacobi_svd(s.to_dense());
  LanczosOptions opts;
  opts.k = 8;
  auto got = lanczos_svd(s, opts);
  expect_triplets_match(got, want, 8, 1e-8);
}

TEST(Lanczos, FullRankRecoversEverything) {
  auto a = random_matrix(15, 10, 17);
  auto want = jacobi_svd(a);
  DenseOperator op(a);
  LanczosOptions opts;
  opts.k = 10;
  opts.max_dim = 10;
  auto got = lanczos_svd(op, opts);
  expect_triplets_match(got, want, 10, 1e-8);
}

TEST(Lanczos, FactorsOrthonormal) {
  auto s = random_sparse(90, 70, 0.1, 19);
  LanczosOptions opts;
  opts.k = 12;
  auto got = lanczos_svd(s, opts);
  EXPECT_LT(orthonormality_error(got.u), 1e-9);
  EXPECT_LT(orthonormality_error(got.v), 1e-9);
}

TEST(Lanczos, DeterministicForFixedSeed) {
  auto s = random_sparse(50, 40, 0.15, 23);
  LanczosOptions opts;
  opts.k = 5;
  auto a = lanczos_svd(s, opts);
  auto b = lanczos_svd(s, opts);
  EXPECT_EQ(a.s, b.s);
  EXPECT_NEAR(max_abs_diff(a.u, b.u), 0.0, 0.0);
}

TEST(Lanczos, ZeroMatrix) {
  CooBuilder b(10, 8);
  auto s = b.to_csc();
  LanczosOptions opts;
  opts.k = 3;
  auto got = lanczos_svd(s, opts);
  for (double sigma : got.s) EXPECT_NEAR(sigma, 0.0, 1e-12);
}

TEST(Lanczos, RankOneMatrix) {
  // A = u v^T with ||u||=2, ||v||=3 -> sigma_1 = 6, everything else 0.
  CooBuilder b(40, 30);
  for (index_t i = 0; i < 40; ++i) {
    for (index_t j = 0; j < 30; ++j) {
      const double u = (i == 0) ? 2.0 : 0.0;
      const double v = (j == 0) ? 3.0 : 0.0;
      if (u * v != 0.0) b.add(i, j, u * v);
    }
  }
  LanczosOptions opts;
  opts.k = 3;
  auto got = lanczos_svd(b.to_csc(), opts);
  EXPECT_NEAR(got.s[0], 6.0, 1e-10);
  if (got.rank() > 1) {
    EXPECT_NEAR(got.s[1], 0.0, 1e-8);
  }
}

TEST(Lanczos, RepeatedSingularValues) {
  // Identity-like: all singular values equal; subspace is degenerate but
  // the values must still be correct.
  CooBuilder b(20, 20);
  for (index_t i = 0; i < 20; ++i) b.add(i, i, 2.5);
  LanczosOptions opts;
  opts.k = 6;
  auto got = lanczos_svd(b.to_csc(), opts);
  for (index_t i = 0; i < 6; ++i) EXPECT_NEAR(got.s[i], 2.5, 1e-9);
}

TEST(Lanczos, WideMatrix) {
  auto s = random_sparse(30, 100, 0.1, 29);
  auto want = jacobi_svd(s.to_dense());
  LanczosOptions opts;
  opts.k = 6;
  auto got = lanczos_svd(s, opts);
  expect_triplets_match(got, want, 6, 1e-8);
}

TEST(Lanczos, StatsReportIterationCount) {
  auto s = random_sparse(80, 60, 0.1, 31);
  LanczosOptions opts;
  opts.k = 4;
  LanczosStats stats;
  (void)lanczos_svd(s, opts, &stats);
  EXPECT_GT(stats.steps, 4u);
  EXPECT_EQ(stats.matvecs, stats.steps);
  EXPECT_LE(stats.max_residual, 1.0);
}

TEST(Lanczos, KLargerThanRankIsClamped) {
  auto s = random_sparse(10, 6, 0.5, 37);
  LanczosOptions opts;
  opts.k = 50;
  auto got = lanczos_svd(s, opts);
  EXPECT_LE(got.rank(), 6u);
}

TEST(TruncatedSvd, DispatchesToJacobiForSmall) {
  auto a = random_matrix(30, 12, 41);
  auto got = truncated_svd(a, 5);
  auto want = jacobi_svd(a);
  expect_triplets_match(got, want, 5, 1e-9);
  EXPECT_EQ(got.rank(), 5u);
}

TEST(TruncatedSvd, LanczosPathForLarge) {
  auto a = random_matrix(150, 120, 43);
  auto got = truncated_svd(a, 6, /*dense_cutoff=*/32);
  auto want = jacobi_svd(a);
  expect_triplets_match(got, want, 6, 1e-7);
}

}  // namespace
