// Randomized SVD invariant tests for the Lanczos solver: on seeded sparse
// matrices the returned triplets must satisfy the defining properties of a
// (truncated) SVD regardless of the matrix drawn —
//
//   * sigma descending and nonnegative,
//   * U and V have orthonormal columns:  ||U^T U - I||_max, ||V^T V - I||_max
//     tiny (full reorthogonalization promises this to near machine-eps),
//   * each triplet satisfies the coupled residual equations
//         ||A v_i - sigma_i u_i||_2   and   ||A^T u_i - sigma_i v_i||_2
//     within the convergence tolerance (relative to sigma_1),
//   * the solver agrees with itself across start-vector seeds.
//
// These are *property* checks, not golden values: any regression in
// reorthogonalization, the Ritz convergence test, or the final basis
// rotation breaks at least one of them on some seed.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "la/lanczos.hpp"
#include "la/sparse.hpp"
#include "synth/sparse_random.hpp"

namespace {

using namespace lsi;

double max_abs_off_identity(const la::DenseMatrix& gram) {
  double worst = 0.0;
  for (la::index_t j = 0; j < gram.cols(); ++j) {
    for (la::index_t i = 0; i < gram.rows(); ++i) {
      const double target = (i == j) ? 1.0 : 0.0;
      worst = std::max(worst, std::abs(gram(i, j) - target));
    }
  }
  return worst;
}

double column_residual(const la::CscMatrix& a, const la::SvdResult& svd,
                       la::index_t i, bool transpose) {
  std::vector<double> y(transpose ? a.cols() : a.rows(), 0.0);
  const auto x = transpose ? svd.u.col(i) : svd.v.col(i);
  const auto paired = transpose ? svd.v.col(i) : svd.u.col(i);
  if (transpose) {
    a.apply_transpose(x, y);
  } else {
    a.apply(x, y);
  }
  double norm2 = 0.0;
  for (std::size_t r = 0; r < y.size(); ++r) {
    const double diff = y[r] - svd.s[i] * paired[r];
    norm2 += diff * diff;
  }
  return std::sqrt(norm2);
}

class LanczosInvariants : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LanczosInvariants, RandomSparseMatrixSatisfiesSvdProperties) {
  const std::uint64_t seed = GetParam();
  const la::CscMatrix a = synth::random_sparse_matrix(150, 110, 0.04, seed);

  la::LanczosOptions opts;
  opts.k = 10;
  opts.tol = 1e-10;
  opts.seed = seed * 7 + 1;
  la::LanczosStats stats;
  const la::SvdResult svd = lanczos_svd(a, opts, &stats);

  ASSERT_EQ(svd.rank(), 10u);
  ASSERT_EQ(svd.u.rows(), a.rows());
  ASSERT_EQ(svd.v.rows(), a.cols());
  EXPECT_EQ(stats.converged, svd.rank())
      << "max residual " << stats.max_residual;

  // Spectrum: descending, nonnegative, leading value nonzero.
  ASSERT_GT(svd.s[0], 0.0);
  for (std::size_t i = 0; i < svd.s.size(); ++i) {
    EXPECT_GE(svd.s[i], 0.0) << "sigma[" << i << "]";
    if (i > 0) EXPECT_LE(svd.s[i], svd.s[i - 1]) << "sigma not descending";
  }

  // Orthonormality of both bases (full reorthogonalization's contract).
  EXPECT_LE(max_abs_off_identity(la::multiply_at_b(svd.u, svd.u)), 1e-8);
  EXPECT_LE(max_abs_off_identity(la::multiply_at_b(svd.v, svd.v)), 1e-8);

  // Coupled residuals, relative to sigma_1 like the solver's own test.
  const double bound = 1e-6 * svd.s[0];
  for (la::index_t i = 0; i < svd.rank(); ++i) {
    EXPECT_LE(column_residual(a, svd, i, /*transpose=*/false), bound)
        << "||A v_i - sigma_i u_i|| at i=" << i;
    EXPECT_LE(column_residual(a, svd, i, /*transpose=*/true), bound)
        << "||A^T u_i - sigma_i v_i|| at i=" << i;
  }
}

TEST_P(LanczosInvariants, SpectrumIsStartVectorInvariant) {
  const std::uint64_t seed = GetParam();
  const la::CscMatrix a = synth::random_sparse_matrix(120, 90, 0.05, seed);

  la::LanczosOptions opts;
  opts.k = 6;
  opts.tol = 1e-10;
  opts.seed = 1;
  const la::SvdResult first = lanczos_svd(a, opts);
  opts.seed = 2;
  const la::SvdResult second = lanczos_svd(a, opts);

  ASSERT_EQ(first.rank(), second.rank());
  for (std::size_t i = 0; i < first.s.size(); ++i) {
    // Singular *values* are intrinsic to A; only the vectors' signs/rotation
    // may depend on the start vector.
    EXPECT_NEAR(first.s[i], second.s[i], 1e-7 * first.s[0])
        << "sigma[" << i << "] depends on the start vector";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LanczosInvariants,
                         ::testing::Values(11u, 22u, 33u, 44u),
                         [](const ::testing::TestParamInfo<std::uint64_t>& i) {
                           return "seed" + std::to_string(i.param);
                         });

}  // namespace
