// 64-byte-aligned numeric storage (docs/KERNELS.md): every DenseMatrix
// allocation must land on a cache-line boundary so the dispatched SIMD
// kernels' loadu instructions are aligned in practice, and swapping the
// allocator must not perturb a single ranking bit. The byte-exact
// cross-change anchor is lsi_io_golden_test (the committed .lsidb fixture
// pins U/sigma/V bit-for-bit against the pre-aligned-storage build); here we
// pin the alignment invariant itself across every construction path plus an
// end-to-end ranking reproducibility check on aligned storage.

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <string>
#include <vector>

#include "la/dense.hpp"
#include "lsi/lsi.hpp"
#include "util/aligned.hpp"

namespace {

using namespace lsi;

bool is_aligned64(const void* p) {
  return reinterpret_cast<std::uintptr_t>(p) % 64 == 0;
}

TEST(AlignedStorage, AlignedVectorDataIsCacheLineAligned) {
  // Sizes straddling the rounding boundary: 1 element, one full line (8
  // doubles), a non-multiple, and something large enough to force a real
  // heap block.
  for (std::size_t n : {1u, 7u, 8u, 9u, 63u, 64u, 1000u}) {
    util::aligned_vector<double> v(n, 1.5);
    EXPECT_TRUE(is_aligned64(v.data())) << n << " elements";
    // Growth reallocates through the same allocator.
    v.resize(n * 2 + 1, 2.5);
    EXPECT_TRUE(is_aligned64(v.data())) << n << " elements after resize";
    EXPECT_EQ(v.front(), 1.5);
    EXPECT_EQ(v.back(), 2.5);
  }
  // float specialization (the bf16 store's scratch buffers).
  util::aligned_vector<float> f(37, 0.25f);
  EXPECT_TRUE(is_aligned64(f.data()));
}

TEST(AlignedStorage, EveryDenseMatrixConstructionPathIsAligned) {
  la::DenseMatrix zero(5, 3);  // odd row count: base stays aligned anyway
  EXPECT_TRUE(is_aligned64(zero.data()));

  const auto rows = la::DenseMatrix::from_rows(
      {{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}, {7.0, 8.0, 9.0}});
  EXPECT_TRUE(is_aligned64(rows.data()));

  EXPECT_TRUE(is_aligned64(la::DenseMatrix::identity(7).data()));
  EXPECT_TRUE(is_aligned64(rows.first_cols(2).data()));
  EXPECT_TRUE(is_aligned64(rows.transposed().data()));

  auto grown = rows;
  grown.append_cols(la::DenseMatrix::from_rows({{1.0}, {2.0}, {3.0}}));
  EXPECT_TRUE(is_aligned64(grown.data()));
  grown.append_rows(la::DenseMatrix(2, grown.cols()));
  EXPECT_TRUE(is_aligned64(grown.data()));

  // Values survive the aligned round trips untouched.
  EXPECT_EQ(rows(0, 0), 1.0);
  EXPECT_EQ(rows(2, 2), 9.0);
  EXPECT_EQ(grown(0, 3), 1.0);
  EXPECT_EQ(grown.rows(), 5u);
}

TEST(AlignedStorage, IndexFactorsAreAlignedAndRankingsReproducible) {
  text::Collection docs;
  const std::vector<std::string> bodies = {
      "human machine interface for abc computer applications",
      "a survey of user opinion of computer system response time",
      "the eps user interface management system",
      "system and human system engineering testing of eps",
      "relation of user perceived response time to error measurement",
      "the generation of random binary unordered trees",
      "the intersection graph of paths in trees",
      "graph minors iv widths of trees and well quasi ordering",
      "graph minors a survey",
  };
  for (std::size_t d = 0; d < bodies.size(); ++d) {
    docs.push_back({"c" + std::to_string(d), bodies[d]});
  }

  core::IndexOptions opts;
  opts.k = 2;
  auto index = core::LsiIndex::try_build(docs, opts).value();

  // The factor matrices the Eq. 6 hot path sweeps are the point of the
  // whole exercise: their bases must be cache-line aligned.
  EXPECT_TRUE(is_aligned64(index.space().u.data()));
  EXPECT_TRUE(is_aligned64(index.space().v.data()));

  // Build-to-build and query-to-query reproducibility on aligned storage:
  // the allocator changes where the bytes live, never what they are.
  auto again = core::LsiIndex::try_build(docs, opts).value();
  core::QueryOptions qopts;
  for (const char* q : {"human computer interaction", "graph minors trees"}) {
    const auto a = index.query(q, qopts, nullptr);
    const auto b = again.query(q, qopts, nullptr);
    ASSERT_EQ(a.size(), b.size()) << q;
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].doc, b[i].doc) << q << " rank " << i;
      EXPECT_EQ(a[i].cosine, b[i].cosine) << q << " rank " << i;
    }
  }
}

}  // namespace
