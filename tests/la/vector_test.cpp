// Level-1 kernel tests.

#include <gtest/gtest.h>

#include <cmath>

#include "la/vector_ops.hpp"

namespace {

using namespace lsi::la;

TEST(VectorOps, Dot) {
  Vector x = {1, 2, 3};
  Vector y = {4, -5, 6};
  EXPECT_DOUBLE_EQ(dot(x, y), 4 - 10 + 18);
}

TEST(VectorOps, DotEmpty) {
  Vector x, y;
  EXPECT_DOUBLE_EQ(dot(x, y), 0.0);
}

TEST(VectorOps, Norm2Simple) {
  Vector x = {3, 4};
  EXPECT_DOUBLE_EQ(norm2(x), 5.0);
}

TEST(VectorOps, Norm2AvoidsOverflow) {
  Vector x = {1e200, 1e200};
  EXPECT_NEAR(norm2(x) / (std::sqrt(2.0) * 1e200), 1.0, 1e-14);
}

TEST(VectorOps, Norm2AvoidsUnderflow) {
  Vector x = {1e-200, 1e-200};
  EXPECT_NEAR(norm2(x) / (std::sqrt(2.0) * 1e-200), 1.0, 1e-14);
}

TEST(VectorOps, Axpy) {
  Vector x = {1, 2};
  Vector y = {10, 20};
  axpy(2.0, x, y);
  EXPECT_DOUBLE_EQ(y[0], 12.0);
  EXPECT_DOUBLE_EQ(y[1], 24.0);
}

TEST(VectorOps, ScaleAndZero) {
  Vector x = {1, -2, 3};
  scale(x, -2.0);
  EXPECT_DOUBLE_EQ(x[1], 4.0);
  set_zero(x);
  for (double v : x) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(VectorOps, NormalizeReturnsNorm) {
  Vector x = {0, 3, 4};
  EXPECT_DOUBLE_EQ(normalize(x), 5.0);
  EXPECT_NEAR(norm2(x), 1.0, 1e-15);
}

TEST(VectorOps, NormalizeZeroVectorUntouched) {
  Vector x = {0, 0};
  EXPECT_DOUBLE_EQ(normalize(x), 0.0);
  EXPECT_DOUBLE_EQ(x[0], 0.0);
}

TEST(VectorOps, CosineBounds) {
  Vector x = {1, 0};
  Vector y = {1, 1};
  EXPECT_NEAR(cosine(x, y), 1.0 / std::sqrt(2.0), 1e-15);
  Vector z = {0, 0};
  EXPECT_DOUBLE_EQ(cosine(x, z), 0.0);
}

TEST(VectorOps, CosineAntiparallel) {
  Vector x = {2, 1};
  Vector y = {-4, -2};
  EXPECT_NEAR(cosine(x, y), -1.0, 1e-15);
}

}  // namespace
