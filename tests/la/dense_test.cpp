// Dense matrix tests: constructors, views, products, and shape algebra.

#include <gtest/gtest.h>

#include "la/dense.hpp"
#include "util/rng.hpp"

namespace {

using namespace lsi::la;

DenseMatrix random_matrix(index_t m, index_t n, std::uint64_t seed) {
  lsi::util::Rng rng(seed);
  DenseMatrix a(m, n);
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < m; ++i) a(i, j) = rng.normal();
  }
  return a;
}

TEST(Dense, FromRowsAndAccess) {
  auto a = DenseMatrix::from_rows({{1, 2, 3}, {4, 5, 6}});
  EXPECT_EQ(a.rows(), 2u);
  EXPECT_EQ(a.cols(), 3u);
  EXPECT_DOUBLE_EQ(a(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(a(1, 2), 6.0);
}

TEST(Dense, IdentityProduct) {
  auto a = random_matrix(4, 4, 1);
  auto i4 = DenseMatrix::identity(4);
  EXPECT_NEAR(max_abs_diff(multiply(a, i4), a), 0.0, 1e-15);
  EXPECT_NEAR(max_abs_diff(multiply(i4, a), a), 0.0, 1e-15);
}

TEST(Dense, MultiplyKnown) {
  auto a = DenseMatrix::from_rows({{1, 2}, {3, 4}});
  auto b = DenseMatrix::from_rows({{5, 6}, {7, 8}});
  auto c = multiply(a, b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(Dense, AtBMatchesExplicitTranspose) {
  auto a = random_matrix(7, 4, 2);
  auto b = random_matrix(7, 5, 3);
  EXPECT_NEAR(max_abs_diff(multiply_at_b(a, b), multiply(a.transposed(), b)),
              0.0, 1e-12);
}

TEST(Dense, ABtMatchesExplicitTranspose) {
  auto a = random_matrix(6, 4, 4);
  auto b = random_matrix(5, 4, 5);
  EXPECT_NEAR(max_abs_diff(multiply_a_bt(a, b), multiply(a, b.transposed())),
              0.0, 1e-12);
}

TEST(Dense, MatVecAgainstMatMat) {
  auto a = random_matrix(6, 3, 6);
  Vector x = {1.5, -2.0, 0.5};
  auto y = multiply(a, x);
  DenseMatrix xm(3, 1);
  for (index_t i = 0; i < 3; ++i) xm(i, 0) = x[i];
  auto ym = multiply(a, xm);
  for (index_t i = 0; i < 6; ++i) EXPECT_NEAR(y[i], ym(i, 0), 1e-13);
}

TEST(Dense, TransposeMatVec) {
  auto a = random_matrix(6, 3, 7);
  Vector x = {1, 2, 3, 4, 5, 6};
  auto y = multiply_transpose(a, x);
  auto yt = multiply(a.transposed(), x);
  for (index_t i = 0; i < 3; ++i) EXPECT_NEAR(y[i], yt[i], 1e-13);
}

TEST(Dense, RowExtraction) {
  auto a = DenseMatrix::from_rows({{1, 2}, {3, 4}, {5, 6}});
  auto r = a.row(1);
  ASSERT_EQ(r.size(), 2u);
  EXPECT_DOUBLE_EQ(r[0], 3.0);
  EXPECT_DOUBLE_EQ(r[1], 4.0);
}

TEST(Dense, FirstCols) {
  auto a = random_matrix(5, 4, 8);
  auto f = a.first_cols(2);
  EXPECT_EQ(f.cols(), 2u);
  for (index_t i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(f(i, 1), a(i, 1));
  }
}

TEST(Dense, AppendCols) {
  auto a = random_matrix(3, 2, 9);
  auto b = random_matrix(3, 3, 10);
  auto c = a;
  c.append_cols(b);
  EXPECT_EQ(c.cols(), 5u);
  EXPECT_DOUBLE_EQ(c(2, 4), b(2, 2));
  EXPECT_DOUBLE_EQ(c(1, 0), a(1, 0));
}

TEST(Dense, AppendRows) {
  auto a = random_matrix(2, 3, 11);
  auto b = random_matrix(4, 3, 12);
  auto c = a;
  c.append_rows(b);
  EXPECT_EQ(c.rows(), 6u);
  EXPECT_DOUBLE_EQ(c(0, 1), a(0, 1));
  EXPECT_DOUBLE_EQ(c(5, 2), b(3, 2));
}

TEST(Dense, AppendToEmpty) {
  DenseMatrix a;
  auto b = random_matrix(3, 2, 13);
  a.append_cols(b);
  EXPECT_EQ(a.rows(), 3u);
  EXPECT_EQ(a.cols(), 2u);
}

TEST(Dense, ScaleColsRows) {
  auto a = DenseMatrix::from_rows({{1, 2}, {3, 4}});
  Vector d = {2, 10};
  auto ac = scale_cols(a, d);
  EXPECT_DOUBLE_EQ(ac(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(ac(0, 1), 20.0);
  auto ar = scale_rows(a, d);
  EXPECT_DOUBLE_EQ(ar(0, 1), 4.0);
  EXPECT_DOUBLE_EQ(ar(1, 0), 30.0);
}

TEST(Dense, NormsAndAddScaled) {
  auto a = DenseMatrix::from_rows({{3, 0}, {0, 4}});
  EXPECT_DOUBLE_EQ(a.frobenius_norm(), 5.0);
  EXPECT_DOUBLE_EQ(a.max_abs(), 4.0);
  auto b = DenseMatrix::identity(2);
  a.add_scaled(b, -3.0);
  EXPECT_DOUBLE_EQ(a(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(a(1, 1), 1.0);
}

TEST(Dense, OrthonormalityErrorOfIdentity) {
  EXPECT_NEAR(orthonormality_error(DenseMatrix::identity(5)), 0.0, 1e-15);
}

TEST(Dense, BlockedAtBMatchesReference) {
  // Shared dimension longer than the 512-row block so several blocks are
  // accumulated, with odd sizes hitting every remainder path.
  auto a = random_matrix(1030, 7, 10);
  auto b = random_matrix(1030, 13, 11);
  EXPECT_NEAR(max_abs_diff(multiply_at_b_blocked(a, b), multiply_at_b(a, b)),
              0.0, 1e-10);
}

TEST(Dense, BlockedAtBBitIdenticalAcrossPanelWidths) {
  auto a = random_matrix(517, 5, 12);
  auto b = random_matrix(517, 11, 13);
  const auto ref = multiply_at_b_blocked(a, b, 16);
  for (index_t panel : {1u, 2u, 3u, 4u, 7u, 11u, 64u}) {
    const auto c = multiply_at_b_blocked(a, b, panel);
    ASSERT_TRUE(c.same_shape(ref));
    for (index_t j = 0; j < c.cols(); ++j) {
      for (index_t i = 0; i < c.rows(); ++i) {
        EXPECT_EQ(c(i, j), ref(i, j)) << "panel " << panel;  // exact bits
      }
    }
  }
}

TEST(Dense, BlockedAtBBitIdenticalForColumnSubsets) {
  // The batched-retrieval parity guarantee: a column of B produces the same
  // bits whether multiplied alone or inside a wider batch.
  auto a = random_matrix(700, 6, 14);
  auto b = random_matrix(700, 9, 15);
  const auto full = multiply_at_b_blocked(a, b);
  for (index_t j = 0; j < b.cols(); ++j) {
    DenseMatrix single(b.rows(), 1);
    auto src = b.col(j);
    auto dst = single.col(0);
    for (index_t i = 0; i < b.rows(); ++i) dst[i] = src[i];
    const auto c = multiply_at_b_blocked(a, single);
    for (index_t i = 0; i < a.cols(); ++i) {
      EXPECT_EQ(c(i, 0), full(i, j)) << "column " << j;
    }
  }
}

TEST(Dense, BlockedAtBEmptyShapes) {
  EXPECT_TRUE(multiply_at_b_blocked(DenseMatrix{}, DenseMatrix{}).empty());
  auto a = random_matrix(5, 3, 16);
  DenseMatrix no_cols(5, 0);
  const auto c = multiply_at_b_blocked(a, no_cols);
  EXPECT_EQ(c.rows(), 3u);
  EXPECT_EQ(c.cols(), 0u);
}

TEST(Dense, ToStringContainsEntries) {
  auto a = DenseMatrix::from_rows({{1.5}});
  EXPECT_NE(to_string(a).find("1.5"), std::string::npos);
}

// Associativity / distributivity style properties over random shapes.
class DenseProperty : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(DenseProperty, ProductTransposeIdentity) {
  auto [m, kk, n] = GetParam();
  auto a = random_matrix(m, kk, 100 + m);
  auto b = random_matrix(kk, n, 200 + n);
  // (A B)^T == B^T A^T
  auto left = multiply(a, b).transposed();
  auto right = multiply(b.transposed(), a.transposed());
  EXPECT_NEAR(max_abs_diff(left, right), 0.0, 1e-11);
}

INSTANTIATE_TEST_SUITE_P(Shapes, DenseProperty,
                         ::testing::Values(std::tuple{1, 1, 1},
                                           std::tuple{3, 5, 2},
                                           std::tuple{8, 2, 9},
                                           std::tuple{16, 16, 16},
                                           std::tuple{33, 7, 5}));

}  // namespace
