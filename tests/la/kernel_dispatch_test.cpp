// Runtime kernel dispatch tests (docs/KERNELS.md): name resolution,
// LSI_KERNEL environment semantics, graceful fallback when the ISA is
// absent, force() round-trips, and the regression that the blocked GEMM
// stays bit-identical across panel widths and chunkings under every kernel.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "la/dense.hpp"
#include "la/kernels.hpp"
#include "util/rng.hpp"

namespace {

using namespace lsi::la;

DenseMatrix random_matrix(index_t m, index_t n, std::uint64_t seed) {
  lsi::util::Rng rng(seed);
  DenseMatrix a(m, n);
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < m; ++i) a(i, j) = rng.normal();
  }
  return a;
}

/// Every forced-kernel test restores "auto" so in-process test order never
/// leaks a forced kernel into other tests.
struct ForceGuard {
  ~ForceGuard() { kern::force("auto"); }
};

// --- select(): pure name resolution -----------------------------------------

TEST(KernelDispatch, SelectPortableIgnoresCpu) {
  for (bool cpu_ok : {false, true}) {
    const auto sel = kern::select("portable", cpu_ok);
    ASSERT_NE(sel.ops, nullptr);
    EXPECT_STREQ(sel.ops->name, "portable");
    EXPECT_FALSE(sel.fell_back);
  }
}

TEST(KernelDispatch, SelectAvx2FallsBackGracefullyWithoutIsa) {
  // cpu_ok == false models running the binary on a machine without AVX2:
  // an explicit "avx2" request must not crash or error, it serves portable
  // and flags the fallback.
  const auto sel = kern::select("avx2", /*cpu_ok=*/false);
  ASSERT_NE(sel.ops, nullptr);
  EXPECT_STREQ(sel.ops->name, "portable");
  EXPECT_TRUE(sel.fell_back);
}

TEST(KernelDispatch, SelectAvx2UsesIsaWhenPresent) {
  const auto sel = kern::select("avx2", /*cpu_ok=*/true);
  ASSERT_NE(sel.ops, nullptr);
  if (kern::avx2() != nullptr) {
    EXPECT_STREQ(sel.ops->name, "avx2");
    EXPECT_FALSE(sel.fell_back);
  } else {
    // Binary compiled without the AVX2 TU (non-x86): still graceful.
    EXPECT_STREQ(sel.ops->name, "portable");
    EXPECT_TRUE(sel.fell_back);
  }
}

TEST(KernelDispatch, SelectAutoNeverFlagsFallback) {
  for (bool cpu_ok : {false, true}) {
    const auto sel = kern::select("auto", cpu_ok);
    ASSERT_NE(sel.ops, nullptr);
    EXPECT_FALSE(sel.fell_back);
    if (!cpu_ok) {
      EXPECT_STREQ(sel.ops->name, "portable");
    }
  }
}

TEST(KernelDispatch, SelectUnknownNameIsNull) {
  EXPECT_EQ(kern::select("sse9", true).ops, nullptr);
  EXPECT_EQ(kern::select("", true).ops, nullptr);
  EXPECT_EQ(kern::select("PORTABLE", true).ops, nullptr);  // case-sensitive
}

// --- resolve_env(): the LSI_KERNEL startup semantics ------------------------

TEST(KernelDispatch, EnvUnsetOrEmptyResolvesAuto) {
  EXPECT_STREQ(kern::resolve_env(nullptr, false).name, "portable");
  EXPECT_STREQ(kern::resolve_env("", false).name, "portable");
  if (kern::avx2() != nullptr) {
    EXPECT_STREQ(kern::resolve_env(nullptr, true).name, "avx2");
  }
}

TEST(KernelDispatch, EnvForcesPortableEvenWithAvx2Cpu) {
  EXPECT_STREQ(kern::resolve_env("portable", true).name, "portable");
}

TEST(KernelDispatch, EnvAvx2FallsBackWithoutIsa) {
  EXPECT_STREQ(kern::resolve_env("avx2", false).name, "portable");
  if (kern::avx2() != nullptr) {
    EXPECT_STREQ(kern::resolve_env("avx2", true).name, "avx2");
  }
}

TEST(KernelDispatch, EnvUnknownValueRunsAuto) {
  // A typo in LSI_KERNEL must not brick the process.
  const kern::Ops& got = kern::resolve_env("fastest-please", true);
  const kern::Ops& want = kern::resolve_env(nullptr, true);
  EXPECT_STREQ(got.name, want.name);
}

// --- force(): process-global override ---------------------------------------

TEST(KernelDispatch, ForceRoundTrips) {
  ForceGuard guard;
  ASSERT_TRUE(kern::force("portable"));
  EXPECT_STREQ(kern::active().name, "portable");
  ASSERT_TRUE(kern::force("avx2"));
  if (kern::cpu_has_avx2() && kern::avx2() != nullptr) {
    EXPECT_STREQ(kern::active().name, "avx2");
  } else {
    EXPECT_STREQ(kern::active().name, "portable");  // graceful fallback
  }
  ASSERT_TRUE(kern::force("auto"));
}

TEST(KernelDispatch, ForceUnknownNameChangesNothing) {
  ForceGuard guard;
  ASSERT_TRUE(kern::force("portable"));
  EXPECT_FALSE(kern::force("quantum"));
  EXPECT_STREQ(kern::active().name, "portable");
}

// --- blocked GEMM invariance per kernel -------------------------------------

/// Serial reference for C = A^T B built from the SAME kernel's register
/// tiles, with the same two-level structure as multiply_at_b_blocked (tile4
/// column groups + tile1 remainder, 512-row blocks) but no threading and no
/// panel decomposition. Any dependence of the parallel implementation on
/// panel width, chunk boundaries, or thread count shows up as a mismatch.
DenseMatrix reference_at_b(const kern::Ops& ops, const DenseMatrix& a,
                           const DenseMatrix& b) {
  constexpr std::size_t kRowBlock = 512;
  DenseMatrix c(a.cols(), b.cols());
  for (std::size_t lo = 0; lo < a.rows(); lo += kRowBlock) {
    const std::size_t hi = std::min<std::size_t>(lo + kRowBlock, a.rows());
    for (index_t i = 0; i < a.cols(); ++i) {
      const double* ai = a.col(i).data();
      index_t j = 0;
      for (; j + 4 <= b.cols(); j += 4) {
        double tile[4];
        ops.at_b_tile4(ai, b.col(j).data(), b.col(j + 1).data(),
                       b.col(j + 2).data(), b.col(j + 3).data(), lo, hi,
                       tile);
        for (int t = 0; t < 4; ++t) c(i, j + t) += tile[t];
      }
      for (; j < b.cols(); ++j) {
        c(i, j) += ops.at_b_tile1(ai, b.col(j).data(), lo, hi);
      }
    }
  }
  return c;
}

TEST(KernelDispatch, BlockedGemmBitIdenticalAcrossPanelWidths) {
  ForceGuard guard;
  std::vector<std::string> names{"portable"};
  if (kern::cpu_has_avx2() && kern::avx2() != nullptr) {
    names.push_back("avx2");
  }
  const auto a = random_matrix(613, 13, 7);  // crosses a 512-row block edge
  const auto b = random_matrix(613, 9, 8);
  for (const auto& name : names) {
    ASSERT_TRUE(kern::force(name));
    const DenseMatrix want = reference_at_b(kern::active(), a, b);
    for (index_t panel : {1, 2, 3, 4, 5, 7, 16, 64}) {
      const DenseMatrix got = multiply_at_b_blocked(a, b, panel);
      ASSERT_EQ(got.rows(), want.rows());
      ASSERT_EQ(got.cols(), want.cols());
      for (index_t i = 0; i < got.rows(); ++i) {
        for (index_t j = 0; j < got.cols(); ++j) {
          ASSERT_EQ(want(i, j), got(i, j))
              << name << " panel=" << panel << " (" << i << "," << j << ")";
        }
      }
    }
  }
}

TEST(KernelDispatch, BlockedGemmExhaustiveTinyShapes) {
  // Every (m, p, q) in [0, 17]^3: the empty/degenerate shapes must neither
  // crash nor disagree with the serial tile reference under any kernel.
  ForceGuard guard;
  std::vector<std::string> names{"portable"};
  if (kern::cpu_has_avx2() && kern::avx2() != nullptr) {
    names.push_back("avx2");
  }
  for (const auto& name : names) {
    ASSERT_TRUE(kern::force(name));
    for (index_t m = 0; m <= 17; ++m) {
      for (index_t p = 0; p <= 17; ++p) {
        for (index_t q = 0; q <= 17; ++q) {
          const auto a = random_matrix(m, p, 17 * m + p);
          const auto b = random_matrix(m, q, 31 * m + q);
          const DenseMatrix got = multiply_at_b_blocked(a, b);
          const DenseMatrix want = reference_at_b(kern::active(), a, b);
          for (index_t i = 0; i < p; ++i) {
            for (index_t j = 0; j < q; ++j) {
              ASSERT_EQ(want(i, j), got(i, j))
                  << name << " m=" << m << " p=" << p << " q=" << q;
            }
          }
        }
      }
    }
  }
}

TEST(KernelDispatch, BlockedGemmMatchesUnblockedWithinTolerance) {
  // Cross-check against the simple multiply_at_b: same math, different
  // association, so only a small relative tolerance is claimed.
  ForceGuard guard;
  const auto a = random_matrix(257, 11, 21);
  const auto b = random_matrix(257, 6, 22);
  const DenseMatrix plain = multiply_at_b(a, b);
  for (const char* name : {"portable", "avx2"}) {
    ASSERT_TRUE(kern::force(name));
    const DenseMatrix blocked = multiply_at_b_blocked(a, b);
    EXPECT_LT(max_abs_diff(plain, blocked), 1e-11) << name;
  }
}

}  // namespace
