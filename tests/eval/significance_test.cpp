// Significance-test and PR-curve tests.

#include <gtest/gtest.h>

#include "eval/metrics.hpp"
#include "eval/significance.hpp"
#include "util/rng.hpp"

namespace {

using namespace lsi::eval;

TEST(Significance, IdenticalSystemsNotSignificant) {
  std::vector<double> a = {0.5, 0.6, 0.7, 0.8};
  auto cmp = compare_systems(a, a);
  EXPECT_DOUBLE_EQ(cmp.mean_difference, 0.0);
  EXPECT_EQ(cmp.ties, 4);
  EXPECT_GT(cmp.randomization_p, 0.9);
  EXPECT_DOUBLE_EQ(cmp.sign_test_p, 1.0);
}

TEST(Significance, ConsistentLargeGapIsSignificant) {
  std::vector<double> a(30), b(30);
  lsi::util::Rng rng(3);
  for (int i = 0; i < 30; ++i) {
    b[i] = 0.3 + 0.1 * rng.uniform();
    a[i] = b[i] + 0.2 + 0.05 * rng.uniform();  // A always clearly better
  }
  auto cmp = compare_systems(a, b);
  EXPECT_EQ(cmp.wins_a, 30);
  EXPECT_LT(cmp.randomization_p, 0.01);
  EXPECT_LT(cmp.sign_test_p, 0.001);
  EXPECT_GT(cmp.mean_difference, 0.15);
}

TEST(Significance, NoisyTieIsNotSignificant) {
  std::vector<double> a(40), b(40);
  lsi::util::Rng rng(5);
  for (int i = 0; i < 40; ++i) {
    a[i] = rng.uniform();
    b[i] = rng.uniform();
  }
  auto cmp = compare_systems(a, b);
  EXPECT_GT(cmp.randomization_p, 0.05);
}

TEST(Significance, EmptyInput) {
  auto cmp = compare_systems({}, {});
  EXPECT_DOUBLE_EQ(cmp.randomization_p, 1.0);
  EXPECT_DOUBLE_EQ(cmp.sign_test_p, 1.0);
}

TEST(Significance, SignTestMatchesBinomialHandValue) {
  // 6 wins, 0 losses: two-sided p = 2 * (1/2)^6 = 0.03125.
  std::vector<double> a = {1, 1, 1, 1, 1, 1};
  std::vector<double> b = {0, 0, 0, 0, 0, 0};
  auto cmp = compare_systems(a, b, 100);
  EXPECT_NEAR(cmp.sign_test_p, 0.03125, 1e-12);
}

TEST(Significance, Deterministic) {
  std::vector<double> a = {0.2, 0.9, 0.4, 0.7, 0.6};
  std::vector<double> b = {0.1, 0.8, 0.5, 0.6, 0.5};
  auto c1 = compare_systems(a, b, 2000, 7);
  auto c2 = compare_systems(a, b, 2000, 7);
  EXPECT_DOUBLE_EQ(c1.randomization_p, c2.randomization_p);
}

TEST(PrCurve, PerfectRankingIsAllOnes) {
  std::vector<lsi::la::index_t> ranked = {1, 2, 3};
  DocSet relevant = {1, 2, 3};
  auto curve = precision_recall_curve(ranked, relevant);
  ASSERT_EQ(curve.size(), 11u);
  for (double p : curve) EXPECT_DOUBLE_EQ(p, 1.0);
}

TEST(PrCurve, MonotoneNonIncreasing) {
  std::vector<lsi::la::index_t> ranked = {1, 9, 2, 8, 7, 3, 6, 5};
  DocSet relevant = {1, 2, 3};
  auto curve = precision_recall_curve(ranked, relevant);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_LE(curve[i], curve[i - 1] + 1e-12);
  }
}

TEST(PrCurve, MeanCurveAverages) {
  std::vector<std::vector<double>> curves = {
      std::vector<double>(11, 1.0), std::vector<double>(11, 0.0)};
  auto mean = mean_curve(curves);
  for (double p : mean) EXPECT_DOUBLE_EQ(p, 0.5);
}

TEST(PrCurve, EmptyCurveSetIsZeros) {
  auto mean = mean_curve({});
  ASSERT_EQ(mean.size(), 11u);
  for (double p : mean) EXPECT_DOUBLE_EQ(p, 0.0);
}

}  // namespace
