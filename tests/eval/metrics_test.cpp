// Precision/recall metric tests.

#include <gtest/gtest.h>

#include "eval/metrics.hpp"

namespace {

using namespace lsi::eval;
using Ranked = std::vector<lsi::la::index_t>;

TEST(Metrics, PrecisionAtCutoff) {
  Ranked ranked = {1, 2, 3, 4};
  DocSet relevant = {1, 3};
  EXPECT_DOUBLE_EQ(precision_at(ranked, relevant, 1), 1.0);
  EXPECT_DOUBLE_EQ(precision_at(ranked, relevant, 2), 0.5);
  EXPECT_DOUBLE_EQ(precision_at(ranked, relevant, 4), 0.5);
  EXPECT_DOUBLE_EQ(precision_at(ranked, relevant, 0), 0.5);  // whole list
}

TEST(Metrics, RecallAtCutoff) {
  Ranked ranked = {1, 2, 3, 4};
  DocSet relevant = {1, 3, 9};
  EXPECT_DOUBLE_EQ(recall_at(ranked, relevant, 1), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(recall_at(ranked, relevant, 0), 2.0 / 3.0);
}

TEST(Metrics, EmptyInputs) {
  EXPECT_DOUBLE_EQ(precision_at({}, {1}, 0), 0.0);
  EXPECT_DOUBLE_EQ(recall_at({1}, {}, 0), 0.0);
  EXPECT_DOUBLE_EQ(average_precision({}, {}), 0.0);
  EXPECT_DOUBLE_EQ(three_point_average_precision({}, {}), 0.0);
}

TEST(Metrics, InterpolatedPrecisionIsMaxBeyondRecall) {
  // relevant at ranks 1 and 4 of {A=relevant, B, C, D=relevant}.
  Ranked ranked = {10, 11, 12, 13};
  DocSet relevant = {10, 13};
  // At recall 0.5: best precision with >= 1 hit = 1.0 (cutoff 1).
  EXPECT_DOUBLE_EQ(interpolated_precision(ranked, relevant, 0.5), 1.0);
  // At recall 1.0: need both hits -> cutoff 4, precision 0.5.
  EXPECT_DOUBLE_EQ(interpolated_precision(ranked, relevant, 1.0), 0.5);
}

TEST(Metrics, PerfectRankingScoresOne) {
  Ranked ranked = {1, 2, 3};
  DocSet relevant = {1, 2, 3};
  EXPECT_DOUBLE_EQ(three_point_average_precision(ranked, relevant), 1.0);
  EXPECT_DOUBLE_EQ(eleven_point_average_precision(ranked, relevant), 1.0);
  EXPECT_DOUBLE_EQ(average_precision(ranked, relevant), 1.0);
}

TEST(Metrics, WorstRankingScoresLow) {
  // Relevant docs at the very bottom of a long list.
  Ranked ranked;
  for (int i = 0; i < 100; ++i) ranked.push_back(i);
  DocSet relevant = {98, 99};
  EXPECT_LT(average_precision(ranked, relevant), 0.03);
  EXPECT_LT(three_point_average_precision(ranked, relevant), 0.03);
}

TEST(Metrics, MissingRelevantDocPenalizesAp) {
  Ranked ranked = {1};
  DocSet relevant = {1, 2};
  EXPECT_DOUBLE_EQ(average_precision(ranked, relevant), 0.5);
}

TEST(Metrics, ApMatchesHandComputation) {
  // hits at ranks 1, 3: AP = (1/1 + 2/3) / 2.
  Ranked ranked = {5, 6, 7};
  DocSet relevant = {5, 7};
  EXPECT_NEAR(average_precision(ranked, relevant), (1.0 + 2.0 / 3.0) / 2.0,
              1e-12);
}

TEST(Metrics, ThreePointIsMeanOfLevels) {
  Ranked ranked = {1, 9, 2, 8, 3};
  DocSet relevant = {1, 2, 3};
  const double expect = (interpolated_precision(ranked, relevant, 0.25) +
                         interpolated_precision(ranked, relevant, 0.50) +
                         interpolated_precision(ranked, relevant, 0.75)) /
                        3.0;
  EXPECT_DOUBLE_EQ(three_point_average_precision(ranked, relevant), expect);
}

TEST(Metrics, BetterRankingScoresHigher) {
  DocSet relevant = {1, 2};
  Ranked good = {1, 2, 3, 4};
  Ranked bad = {3, 4, 1, 2};
  EXPECT_GT(average_precision(good, relevant),
            average_precision(bad, relevant));
  EXPECT_GT(eleven_point_average_precision(good, relevant),
            eleven_point_average_precision(bad, relevant));
}

TEST(Metrics, Mean) {
  EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
}

}  // namespace
