// Tests for the spectrum-energy utilities behind the Section 5.2
// "choosing the number of factors" question.

#include <gtest/gtest.h>

#include "la/jacobi_svd.hpp"
#include "data/med_topics.hpp"
#include "lsi/semantic_space.hpp"
#include "synth/sparse_random.hpp"

namespace {

using namespace lsi;
using core::index_t;

TEST(EnergyCaptured, FullSpectrumIsOne) {
  std::vector<double> sigma = {3.0, 2.0, 1.0};
  EXPECT_DOUBLE_EQ(core::energy_captured(sigma, 3), 1.0);
  EXPECT_DOUBLE_EQ(core::energy_captured(sigma, 10), 1.0);
}

TEST(EnergyCaptured, HeadFraction) {
  std::vector<double> sigma = {3.0, 2.0, 1.0};  // squares 9, 4, 1; total 14
  EXPECT_NEAR(core::energy_captured(sigma, 1), 9.0 / 14.0, 1e-12);
  EXPECT_NEAR(core::energy_captured(sigma, 2), 13.0 / 14.0, 1e-12);
  EXPECT_DOUBLE_EQ(core::energy_captured(sigma, 0), 0.0);
}

TEST(EnergyCaptured, ZeroSpectrum) {
  EXPECT_DOUBLE_EQ(core::energy_captured({}, 3), 0.0);
  EXPECT_DOUBLE_EQ(core::energy_captured({0.0, 0.0}, 1), 0.0);
}

TEST(SuggestK, PicksSmallestSufficientK) {
  std::vector<double> sigma = {3.0, 2.0, 1.0};
  EXPECT_EQ(core::suggest_k(sigma, 0.6), 1u);    // 9/14 = .64
  EXPECT_EQ(core::suggest_k(sigma, 0.65), 2u);   // needs 13/14
  EXPECT_EQ(core::suggest_k(sigma, 0.95), 3u);
  EXPECT_EQ(core::suggest_k(sigma, 1.0), 3u);
}

TEST(SuggestK, DegenerateInputs) {
  EXPECT_EQ(core::suggest_k({}, 0.9), 0u);
  EXPECT_EQ(core::suggest_k({0.0}, 0.9), 0u);
}

TEST(SuggestK, ConsistentWithEckartYoung) {
  // The rank-suggest_k truncation must actually capture the requested
  // fraction of ||A||_F^2 (Theorem 2.1 ties sigma^2 to the norm).
  auto a = synth::random_sparse_matrix(20, 14, 0.4, 21);
  auto svd = la::jacobi_svd(a.to_dense());
  const double target = 0.85;
  const index_t k = core::suggest_k(svd.s, target);
  ASSERT_GT(k, 0u);
  auto truncated = svd;
  truncated.truncate(k);
  const double fro2 = a.to_dense().frobenius_norm() *
                      a.to_dense().frobenius_norm();
  const double captured =
      truncated.reconstruct().frobenius_norm() *
      truncated.reconstruct().frobenius_norm();
  EXPECT_GE(captured / fro2, target - 1e-9);
  // And k-1 must NOT suffice (minimality).
  if (k > 1) {
    EXPECT_LT(core::energy_captured(svd.s, k - 1), target);
  }
}

TEST(SuggestK, PaperExampleSpectrum) {
  // On the Table 3 matrix, 2 factors capture a large-but-partial share —
  // consistent with the example's usable k = 2 plots.
  auto svd = la::jacobi_svd(lsi::data::table3_counts().to_dense());
  const double e2 = core::energy_captured(svd.s, 2);
  EXPECT_GT(e2, 0.3);
  EXPECT_LT(e2, 0.9);
  EXPECT_GE(core::suggest_k(svd.s, e2), 2u);
}

}  // namespace
