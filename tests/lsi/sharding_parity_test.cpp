// Sharded vs monolithic parity (CTest label "integration"):
//
//   * N = 1: the sharded path IS the monolithic path — same projection, same
//     batched ranking, a merge that provably adds no reordering — so results
//     must be *bit-identical* to running BatchedRetriever on the monolithic
//     LsiIndex, cosines included.
//   * N ∈ {1, 2, 4}: each shard estimates its own latent space from its own
//     subcollection, so cosines legitimately differ; on a synthetic corpus
//     whose topics are cleanly separated and whose vocabulary is shared
//     across shards, the *document set* retrieved at top-z must still match
//     the monolithic index (the property the TREC-style decomposition banks
//     on). Everything here is seeded and deterministic.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "lsi/lsi.hpp"
#include "synth/corpus.hpp"

namespace {

using namespace lsi;
using namespace lsi::core;

synth::SyntheticCorpus parity_corpus() {
  // Cleanly separated topics with a shared general vocabulary: no polysemy,
  // queries voicing mostly dominant forms. This is the regime where every
  // shard's independently-estimated space recovers the same topical
  // structure, so sharded and monolithic retrieval agree on the document
  // *set* (the TREC-decomposition assumption the test pins down).
  // Topic size ≈ top_z: a query's ~10 relevant documents outscore the rest
  // by a wide margin in every shard's space, so set agreement measures the
  // decomposition's topical fidelity rather than fine-grained cross-shard
  // score calibration (which sharding deliberately gives up).
  synth::CorpusSpec spec;
  spec.topics = 8;
  spec.concepts_per_topic = 6;
  spec.docs_per_topic = 10;  // 80 docs; every shard still sees each topic
  spec.mean_doc_len = 60.0;
  spec.general_prob = 0.15;
  spec.polysemy_prob = 0.0;
  spec.queries_per_topic = 4;
  spec.query_len = 5;
  spec.query_offform_prob = 0.0;  // dominant forms: retrieval is unambiguous
  spec.seed = 4242;
  return synth::generate_corpus(spec);
}

core::IndexOptions mono_options() {
  core::IndexOptions opts;
  opts.k = 24;
  return opts;
}

TEST(ShardedParity, SingleShardIsBitIdenticalToBatchedRetriever) {
  const auto corpus = parity_corpus();
  const auto iopts = mono_options();

  auto mono = core::LsiIndex::try_build(corpus.docs, iopts).value();

  core::ShardingOptions sopts;
  sopts.num_shards = 1;
  sopts.index = iopts;
  auto sharded = core::ShardedIndex::try_build(corpus.docs, sopts).value();
  ASSERT_EQ(sharded.options().shard_k(0), iopts.k);  // whole budget, 1 shard

  std::vector<std::string> texts;
  for (const auto& q : corpus.queries) texts.push_back(q.text);

  for (std::size_t top_z : {std::size_t{0}, std::size_t{10}}) {
    core::SearchOptions qopts;
    qopts.z = top_z;

    // Monolithic reference: the batched engine over the full index.
    std::vector<la::Vector> vectors;
    for (const auto& t : texts) {
      vectors.push_back(mono.weighted_term_vector(t));
    }
    const auto want = core::BatchedRetriever(mono.space()).rank(
        core::QueryBatch::from_term_vectors(mono.space(), vectors), qopts);

    const auto got = sharded.snapshot().rank_batch(texts, qopts);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t b = 0; b < want.size(); ++b) {
      ASSERT_EQ(got[b].size(), want[b].size()) << "query " << b;
      for (std::size_t i = 0; i < want[b].size(); ++i) {
        EXPECT_EQ(got[b][i].doc, want[b][i].doc)
            << "query " << b << " rank " << i;
        EXPECT_EQ(got[b][i].cosine, want[b][i].cosine)  // exact bits
            << "query " << b << " rank " << i;
      }
    }
  }
}

TEST(ShardedParity, ShardCountsAgreeOnTheTopZDocumentSet) {
  const auto corpus = parity_corpus();
  const auto iopts = mono_options();
  const std::size_t top_z = 10;

  auto mono = core::LsiIndex::try_build(corpus.docs, iopts).value();

  core::SearchOptions qopts;
  qopts.z = top_z;

  std::vector<std::string> texts;
  for (const auto& q : corpus.queries) texts.push_back(q.text);

  // Monolithic reference sets.
  std::vector<std::set<index_t>> want_sets;
  for (const auto& t : texts) {
    const auto ranked =
        mono.query(t, qopts.query_options(), nullptr);
    std::set<index_t> s;
    for (const auto& hit : ranked) s.insert(hit.doc);
    want_sets.push_back(std::move(s));
  }

  for (std::size_t shards : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    core::ShardingOptions sopts;
    sopts.num_shards = shards;
    sopts.index = iopts;
    // The property under test is retrieval agreement, not the cost budget:
    // give every shard the full factor budget so each subcollection's space
    // is estimated as faithfully as the monolithic one.
    sopts.split_k_budget = false;
    auto sharded = core::ShardedIndex::try_build(corpus.docs, sopts).value();
    const auto snap = sharded.snapshot();

    const auto ranked = snap.rank_batch(texts, qopts);
    ASSERT_EQ(ranked.size(), texts.size());

    double overlap_sum = 0.0;
    for (std::size_t b = 0; b < texts.size(); ++b) {
      ASSERT_EQ(ranked[b].size(), want_sets[b].size())
          << shards << " shards, query " << b;
      std::size_t hits = 0;
      for (const auto& sd : ranked[b]) {
        hits += want_sets[b].count(sd.doc);
      }
      overlap_sum +=
          static_cast<double>(hits) / static_cast<double>(top_z);
      if (shards == 1) {
        EXPECT_EQ(hits, top_z) << "N=1 must match the monolithic set exactly";
      }
    }
    const double mean_overlap =
        overlap_sum / static_cast<double>(texts.size());
    // N = 1 is exact; N ∈ {2, 4} blend independently-estimated spaces, so
    // hold them to the documented overlap@10 floor instead of equality.
    const double floor = shards == 1 ? 1.0 : 0.8;
    EXPECT_GE(mean_overlap, floor) << shards << " shards";
  }
}

TEST(ShardedParity, TiedScoresOrderIdenticallyAcrossShardCounts) {
  // Four distinct documents, each duplicated in adjacent positions
  // ([A, A, B, B, C, C, D, D]), with mutually disjoint vocabularies.
  // Round-robin then deals every shard the same multiset of *contents*
  // (N = 2: both shards hold {A, B, C, D}; N = 4: {A, C} / {A, C} /
  // {B, D} / {B, D}), so a duplicate pair's two copies land in shards with
  // bit-identical spaces and tie *exactly*. The query matches only A, and
  // every other document scores 0 (its shard either lacks the query terms
  // entirely or scores orthogonal vocabulary), so the canonical order is
  // fully determined: the A pair first, then ids ascending — identical for
  // every shard count.
  text::Collection docs;
  const std::vector<std::string> bodies = {
      "alpha beta gamma",    "alpha beta gamma",
      "delta epsilon zeta",  "delta epsilon zeta",
      "eta theta iota",      "eta theta iota",
      "kappa lambda mu",     "kappa lambda mu",
  };
  for (std::size_t d = 0; d < bodies.size(); ++d) {
    docs.push_back({"T" + std::to_string(d), bodies[d]});
  }

  core::IndexOptions iopts;
  iopts.k = 2;
  core::SearchOptions qopts;

  std::vector<std::vector<index_t>> orders;
  for (std::size_t shards : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    core::ShardingOptions sopts;
    sopts.num_shards = shards;
    sopts.index = iopts;
    sopts.split_k_budget = false;
    auto sharded = core::ShardedIndex::try_build(docs, sopts).value();
    const auto ranked = sharded.snapshot().retrieve("alpha beta", qopts);
    ASSERT_EQ(ranked.size(), docs.size()) << shards << " shards";
    // Within every equal-cosine run, global ids must ascend.
    for (std::size_t i = 1; i < ranked.size(); ++i) {
      if (ranked[i].cosine == ranked[i - 1].cosine) {
        EXPECT_LT(ranked[i - 1].doc, ranked[i].doc)
            << shards << " shards, rank " << i;
      }
    }
    std::vector<index_t> order;
    for (const auto& sd : ranked) order.push_back(sd.doc);
    orders.push_back(std::move(order));
  }
  // Round-robin gives every shard the same duplicated subcollection, so the
  // tie *sets* coincide and the deterministic tie-break makes the full
  // orders identical across shard counts.
  EXPECT_EQ(orders[0], orders[1]);
  EXPECT_EQ(orders[0], orders[2]);
}

}  // namespace
