// Batched retrieval engine tests: the contract is that a query ranked in a
// batch of any size returns *bit-identical* results (documents, scores, and
// tie-breaks) to the same query ranked alone, for every SimilarityMode, and
// that min_cosine is applied before top-z selection.

#include <gtest/gtest.h>

#include <vector>

#include "lsi/batched_retrieval.hpp"
#include "lsi/retrieval.hpp"
#include "synth/sparse_random.hpp"
#include "util/rng.hpp"

namespace {

using namespace lsi;
using namespace lsi::core;

std::vector<la::Vector> sparse_queries(index_t m, std::size_t count,
                                       unsigned seed) {
  util::Rng rng(seed);
  std::vector<la::Vector> queries(count, la::Vector(m, 0.0));
  for (auto& q : queries) {
    for (int t = 0; t < 4; ++t) {
      q[rng.uniform_index(m)] = 1.0 + static_cast<double>(rng.uniform_index(3));
    }
  }
  return queries;
}

void expect_identical(const std::vector<ScoredDoc>& got,
                      const std::vector<ScoredDoc>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].doc, want[i].doc) << "rank " << i;
    EXPECT_EQ(got[i].cosine, want[i].cosine) << "rank " << i;  // exact bits
  }
}

TEST(BatchedRetrieval, BitIdenticalToSingleForEveryMode) {
  auto a = synth::random_sparse_matrix(40, 25, 0.3, 7);
  auto space = try_build_semantic_space(a, 6).value();
  const auto queries = sparse_queries(40, 10, 11);
  const BatchedRetriever retriever(space);

  for (SimilarityMode mode : {SimilarityMode::kColumnSpace,
                              SimilarityMode::kProjected,
                              SimilarityMode::kPlainV}) {
    SearchOptions opts;
    opts.mode = mode;
    const auto batch = QueryBatch::from_term_vectors(space, queries);
    const auto ranked = retriever.rank(batch, opts);
    ASSERT_EQ(ranked.size(), queries.size());
    for (std::size_t q = 0; q < queries.size(); ++q) {
      expect_identical(ranked[q],
                       retrieve(space, queries[q], opts.query_options()));
    }
  }
}

TEST(BatchedRetrieval, BatchSizeDoesNotChangeResults) {
  auto a = synth::random_sparse_matrix(35, 20, 0.3, 3);
  auto space = try_build_semantic_space(a, 5).value();
  const auto queries = sparse_queries(35, 12, 17);
  const BatchedRetriever retriever(space);
  SearchOptions opts;
  opts.z = 5;

  const auto all = retriever.rank(QueryBatch::from_term_vectors(space, queries),
                                  opts);
  // Re-rank the same queries in blocks of 5 (last block ragged).
  for (std::size_t lo = 0; lo < queries.size(); lo += 5) {
    const std::size_t hi = std::min(queries.size(), lo + 5);
    const std::vector<la::Vector> block(queries.begin() + lo,
                                        queries.begin() + hi);
    const auto part =
        retriever.rank(QueryBatch::from_term_vectors(space, block), opts);
    for (std::size_t b = 0; b < part.size(); ++b) {
      expect_identical(part[b], all[lo + b]);
    }
  }
}

TEST(BatchedRetrieval, FromProjectedMatchesRankDocuments) {
  auto a = synth::random_sparse_matrix(30, 18, 0.35, 9);
  auto space = try_build_semantic_space(a, 4).value();
  const auto queries = sparse_queries(30, 6, 23);

  std::vector<la::Vector> qhats;
  for (const auto& q : queries) qhats.push_back(project_query(space, q));

  SearchOptions opts;
  opts.z = 7;
  const auto ranked = BatchedRetriever(space).rank(
      QueryBatch::from_projected(space, qhats), opts);
  for (std::size_t q = 0; q < qhats.size(); ++q) {
    expect_identical(ranked[q],
                     rank_documents(space, qhats[q], opts.query_options()));
  }
}

TEST(BatchedRetrieval, TiesBreakByAscendingDocIndex) {
  // Documents 2 and 5 occupy the same point in factor space, so their
  // cosines are computed from identical inputs and must tie exactly; the
  // deterministic order puts the lower index first.
  SemanticSpace space;
  util::Rng rng(31);
  const index_t m = 12, n = 8, k = 3;
  space.u = la::DenseMatrix(m, k);
  space.v = la::DenseMatrix(n, k);
  for (index_t j = 0; j < k; ++j) {
    for (auto& x : space.u.col(j)) x = rng.normal();
    for (auto& x : space.v.col(j)) x = rng.normal();
    space.sigma.push_back(static_cast<double>(k - j));
  }
  for (index_t i = 0; i < k; ++i) space.v(5, i) = space.v(2, i);

  const auto queries = sparse_queries(m, 3, 41);
  for (const auto& q : queries) {
    const auto ranked = retrieve(space, q, {});
    ASSERT_EQ(ranked.size(), n);
    std::size_t pos2 = n, pos5 = n;
    for (std::size_t i = 0; i < ranked.size(); ++i) {
      if (ranked[i].doc == 2) pos2 = i;
      if (ranked[i].doc == 5) pos5 = i;
    }
    ASSERT_LT(pos2, n);
    ASSERT_LT(pos5, n);
    EXPECT_EQ(ranked[pos2].cosine, ranked[pos5].cosine);
    EXPECT_EQ(pos5, pos2 + 1);  // tied pair is adjacent, lower doc first
  }
}

TEST(BatchedRetrieval, ThresholdAppliesBeforeTopZ) {
  auto a = synth::random_sparse_matrix(30, 20, 0.3, 13);
  auto space = try_build_semantic_space(a, 5).value();
  const auto queries = sparse_queries(30, 5, 29);

  for (const auto& q : queries) {
    const auto full = retrieve(space, q, {});  // all docs, ranked
    ASSERT_EQ(full.size(), 20u);
    // Threshold at the 8th-best cosine: the bounded heap (top_z = 4 < number
    // passing) must return the best 4 *of the passing documents* — identical
    // to filtering the full ranking and truncating.
    QueryOptions opts;
    opts.min_cosine = full[7].cosine;
    opts.top_z = 4;
    std::vector<ScoredDoc> want;
    for (const auto& sd : full) {
      if (sd.cosine >= opts.min_cosine && want.size() < opts.top_z) {
        want.push_back(sd);
      }
    }
    expect_identical(retrieve(space, q, opts), want);

    // top_z larger than the passing set: returns exactly the passing set.
    opts.top_z = 15;
    std::vector<ScoredDoc> passing;
    for (const auto& sd : full) {
      if (sd.cosine >= opts.min_cosine) passing.push_back(sd);
    }
    ASSERT_LT(passing.size(), opts.top_z);
    expect_identical(retrieve(space, q, opts), passing);
  }
}

TEST(BatchedRetrieval, EmptyBatch) {
  auto a = synth::random_sparse_matrix(20, 12, 0.4, 19);
  auto space = try_build_semantic_space(a, 4).value();
  const BatchedRetriever retriever(space);
  const auto batch = QueryBatch::from_term_vectors(space, {});
  EXPECT_EQ(batch.size(), 0u);
  EXPECT_EQ(retriever.scores(batch, SimilarityMode::kColumnSpace).cols(), 0u);
  EXPECT_TRUE(retriever.rank(batch).empty());
}

TEST(BatchedRetrieval, ZeroNormQueryScoresZeroEverywhere) {
  auto a = synth::random_sparse_matrix(25, 15, 0.35, 5);
  auto space = try_build_semantic_space(a, 4).value();
  const la::Vector zero(25, 0.0);
  const auto ranked = retrieve(space, zero, {});
  ASSERT_EQ(ranked.size(), 15u);
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    EXPECT_EQ(ranked[i].cosine, 0.0);
    EXPECT_EQ(ranked[i].doc, i);  // all tied at 0: doc-index order
  }
}

TEST(BatchedRetrieval, BatchLargerThanCollection) {
  auto a = synth::random_sparse_matrix(30, 9, 0.4, 2);
  auto space = try_build_semantic_space(a, 4).value();
  const auto queries = sparse_queries(30, 40, 37);  // B = 40 > n = 9
  SearchOptions opts;
  opts.z = 3;
  const auto ranked = BatchedRetriever(space).rank(
      QueryBatch::from_term_vectors(space, queries), opts);
  ASSERT_EQ(ranked.size(), 40u);
  for (std::size_t q = 0; q < queries.size(); ++q) {
    expect_identical(ranked[q],
                     retrieve(space, queries[q], opts.query_options()));
  }
}

TEST(BatchedRetrieval, TopZExceedsNumDocs) {
  // z beyond the collection size is a clean no-op on selection: every
  // document passing the threshold comes back, in canonical order.
  auto a = synth::random_sparse_matrix(30, 9, 0.4, 2);
  auto space = try_build_semantic_space(a, 4).value();
  const auto queries = sparse_queries(30, 4, 53);
  SearchOptions opts;
  opts.z = 50;  // n = 9
  const auto ranked = BatchedRetriever(space).rank(
      QueryBatch::from_term_vectors(space, queries), opts);
  ASSERT_EQ(ranked.size(), queries.size());
  for (std::size_t q = 0; q < queries.size(); ++q) {
    ASSERT_EQ(ranked[q].size(), 9u);
    expect_identical(ranked[q], retrieve(space, queries[q], {}));
  }
}

TEST(BatchedRetrieval, TryFromTermVectorsReportsBadLengths) {
  auto a = synth::random_sparse_matrix(20, 12, 0.4, 19);
  auto space = try_build_semantic_space(a, 4).value();

  // Valid input: same batch as the unchecked factory.
  const auto queries = sparse_queries(20, 3, 59);
  auto good = QueryBatch::try_from_term_vectors(space, queries);
  ASSERT_TRUE(good.ok()) << good.status().to_string();
  EXPECT_EQ(good->size(), 3);
  EXPECT_EQ(good->k(), space.k());

  // Empty input: a valid empty batch, not an error.
  auto empty = QueryBatch::try_from_term_vectors(space, {});
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(empty->size(), 0);

  // One vector of the wrong length: kInvalidArgument naming the offender.
  std::vector<la::Vector> bad = queries;
  bad[1] = la::Vector(7, 0.0);
  auto status = QueryBatch::try_from_term_vectors(space, bad);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.status().message().find("1"), std::string::npos);
}

TEST(BatchedRetrieval, TryFromProjectedReportsBadLengths) {
  auto a = synth::random_sparse_matrix(20, 12, 0.4, 19);
  auto space = try_build_semantic_space(a, 4).value();

  std::vector<la::Vector> qhats = {la::Vector(space.k(), 0.5),
                                   la::Vector(space.k(), 1.0)};
  auto good = QueryBatch::try_from_projected(space, qhats);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good->size(), 2);

  qhats.push_back(la::Vector(space.k() + 1, 0.0));
  auto status = QueryBatch::try_from_projected(space, qhats);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.status().code(), StatusCode::kInvalidArgument);
}

TEST(BatchedRetrieval, TryRankRejectsForeignBatch) {
  auto a = synth::random_sparse_matrix(25, 14, 0.35, 43);
  auto space4 = try_build_semantic_space(a, 4).value();
  auto space6 = try_build_semantic_space(a, 6).value();
  const auto queries = sparse_queries(25, 3, 61);

  const auto batch = QueryBatch::from_term_vectors(space4, queries);
  const BatchedRetriever retriever(space6);

  auto mismatched = retriever.try_rank(batch);
  ASSERT_FALSE(mismatched.ok());
  EXPECT_EQ(mismatched.status().code(), StatusCode::kInvalidArgument);

  // The same call against the right space agrees with the unchecked path,
  // and an empty batch is accepted by any retriever.
  auto ranked = BatchedRetriever(space4).try_rank(batch);
  ASSERT_TRUE(ranked.ok());
  const auto want = BatchedRetriever(space4).rank(batch);
  ASSERT_EQ(ranked->size(), want.size());
  for (std::size_t q = 0; q < want.size(); ++q) {
    expect_identical((*ranked)[q], want[q]);
  }
  auto empty = retriever.try_rank(QueryBatch());
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
}

TEST(BatchedRetrieval, DocNormCacheInvalidatesOnMutation) {
  auto a = synth::random_sparse_matrix(25, 14, 0.35, 43);
  auto space = try_build_semantic_space(a, 4).value();
  const auto queries = sparse_queries(25, 3, 47);

  // Fill the cache, then mutate V in place (same row count, so only the
  // explicit invalidation protects against stale norms).
  (void)retrieve(space, queries[0], {});
  for (index_t i = 0; i < space.k(); ++i) space.v(3, i) *= 2.5;
  space.invalidate_doc_norms();

  SemanticSpace fresh;
  fresh.u = space.u;
  fresh.v = space.v;
  fresh.sigma = space.sigma;
  for (const auto& q : queries) {
    expect_identical(retrieve(space, q, {}), retrieve(fresh, q, {}));
  }
}

}  // namespace
