// Properties of the Table 7 flop model: monotonicity in every driving
// variable and the crossover structure the paper discusses.

#include <gtest/gtest.h>

#include "lsi/flops.hpp"

namespace {

using lsi::core::FlopModelParams;

FlopModelParams base() {
  FlopModelParams x;
  x.m = 10000;
  x.n = 5000;
  x.k = 100;
  x.p = 50;
  x.q = 50;
  x.j = 10;
  x.nnz_d = 3000;
  x.nnz_t = 3000;
  x.nnz_z = 500;
  x.nnz_a = 300000;
  x.iterations = 150;
  x.triplets = 100;
  return x;
}

TEST(FlopsProperty, FoldingLinearInBatch) {
  auto x = base();
  const auto f1 = lsi::core::flops_fold_documents(x);
  x.p *= 3;
  EXPECT_EQ(lsi::core::flops_fold_documents(x), 3 * f1);
  auto y = base();
  const auto t1 = lsi::core::flops_fold_terms(y);
  y.q *= 4;
  EXPECT_EQ(lsi::core::flops_fold_terms(y), 4 * t1);
}

TEST(FlopsProperty, MonotoneInEveryVariable) {
  const auto x = base();
  auto bump = [&](auto field_setter) {
    auto y = x;
    field_setter(y);
    return y;
  };
  // Documents phase grows with m, k, p, nnz_d, I, trp.
  const auto d0 = lsi::core::flops_update_documents(x);
  EXPECT_GT(lsi::core::flops_update_documents(
                bump([](FlopModelParams& y) { y.m *= 2; })), d0);
  EXPECT_GT(lsi::core::flops_update_documents(
                bump([](FlopModelParams& y) { y.k *= 2; })), d0);
  EXPECT_GT(lsi::core::flops_update_documents(
                bump([](FlopModelParams& y) { y.nnz_d *= 2; })), d0);
  EXPECT_GT(lsi::core::flops_update_documents(
                bump([](FlopModelParams& y) { y.iterations *= 2; })), d0);
  EXPECT_GT(lsi::core::flops_update_documents(
                bump([](FlopModelParams& y) { y.triplets *= 2; })), d0);
  // Terms phase with n, q.
  const auto t0 = lsi::core::flops_update_terms(x);
  EXPECT_GT(lsi::core::flops_update_terms(
                bump([](FlopModelParams& y) { y.n *= 2; })), t0);
  EXPECT_GT(lsi::core::flops_update_terms(
                bump([](FlopModelParams& y) { y.q *= 2; })), t0);
  // Correction with j.
  const auto w0 = lsi::core::flops_update_weights(x);
  EXPECT_GT(lsi::core::flops_update_weights(
                bump([](FlopModelParams& y) { y.j *= 2; })), w0);
  // Recompute with nnz_a.
  const auto r0 = lsi::core::flops_recompute(x);
  EXPECT_GT(lsi::core::flops_recompute(
                bump([](FlopModelParams& y) { y.nnz_a *= 2; })), r0);
}

TEST(FlopsProperty, FoldToUpdateCrossoverExists) {
  // The paper: folding is far cheaper for d << n but the gap closes as the
  // batch approaches the collection size.
  auto x = base();
  x.p = 1;
  x.nnz_d = 60;
  const double tiny_ratio =
      static_cast<double>(lsi::core::flops_fold_documents(x)) /
      static_cast<double>(lsi::core::flops_update_documents(x));
  x.p = x.n;  // batch as large as the collection
  x.nnz_d = 60 * x.n;
  const double huge_ratio =
      static_cast<double>(lsi::core::flops_fold_documents(x)) /
      static_cast<double>(lsi::core::flops_update_documents(x));
  EXPECT_LT(tiny_ratio, 0.01);
  EXPECT_GT(huge_ratio, 1.0);
}

TEST(FlopsProperty, RotationTermMatchesPaperFormula) {
  // The (2k^2 - k)(m + n) dense-rotation cost must appear verbatim: with
  // everything else zeroed, updating costs exactly that.
  FlopModelParams x;
  x.m = 123;
  x.n = 45;
  x.k = 7;
  EXPECT_EQ(lsi::core::flops_update_documents(x),
            (2 * 7ull * 7 - 7) * (123 + 45));
  EXPECT_EQ(lsi::core::flops_update_terms(x),
            (2 * 7ull * 7 - 7) * (123 + 45));
}

TEST(FlopsProperty, ZeroEverythingIsZero) {
  FlopModelParams x;
  EXPECT_EQ(lsi::core::flops_fold_documents(x), 0u);
  EXPECT_EQ(lsi::core::flops_fold_terms(x), 0u);
  EXPECT_EQ(lsi::core::flops_update_documents(x), 0u);
  EXPECT_EQ(lsi::core::flops_recompute(x), 0u);
}

}  // namespace
