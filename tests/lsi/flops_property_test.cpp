// Properties of the Table 7 flop model: monotonicity in every driving
// variable, the crossover structure the paper discusses, and kernel
// invariance — the model (and the instrumented counters it is compared to)
// count mathematical operations, so neither may depend on which SIMD
// microkernel set executes them (docs/KERNELS.md).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "data/med_topics.hpp"
#include "la/kernels.hpp"
#include "lsi/batched_retrieval.hpp"
#include "lsi/flops.hpp"
#include "lsi/lsi_index.hpp"

namespace {

using lsi::core::FlopModelParams;

FlopModelParams base() {
  FlopModelParams x;
  x.m = 10000;
  x.n = 5000;
  x.k = 100;
  x.p = 50;
  x.q = 50;
  x.j = 10;
  x.nnz_d = 3000;
  x.nnz_t = 3000;
  x.nnz_z = 500;
  x.nnz_a = 300000;
  x.iterations = 150;
  x.triplets = 100;
  return x;
}

TEST(FlopsProperty, FoldingLinearInBatch) {
  auto x = base();
  const auto f1 = lsi::core::flops_fold_documents(x);
  x.p *= 3;
  EXPECT_EQ(lsi::core::flops_fold_documents(x), 3 * f1);
  auto y = base();
  const auto t1 = lsi::core::flops_fold_terms(y);
  y.q *= 4;
  EXPECT_EQ(lsi::core::flops_fold_terms(y), 4 * t1);
}

TEST(FlopsProperty, MonotoneInEveryVariable) {
  const auto x = base();
  auto bump = [&](auto field_setter) {
    auto y = x;
    field_setter(y);
    return y;
  };
  // Documents phase grows with m, k, p, nnz_d, I, trp.
  const auto d0 = lsi::core::flops_update_documents(x);
  EXPECT_GT(lsi::core::flops_update_documents(
                bump([](FlopModelParams& y) { y.m *= 2; })), d0);
  EXPECT_GT(lsi::core::flops_update_documents(
                bump([](FlopModelParams& y) { y.k *= 2; })), d0);
  EXPECT_GT(lsi::core::flops_update_documents(
                bump([](FlopModelParams& y) { y.nnz_d *= 2; })), d0);
  EXPECT_GT(lsi::core::flops_update_documents(
                bump([](FlopModelParams& y) { y.iterations *= 2; })), d0);
  EXPECT_GT(lsi::core::flops_update_documents(
                bump([](FlopModelParams& y) { y.triplets *= 2; })), d0);
  // Terms phase with n, q.
  const auto t0 = lsi::core::flops_update_terms(x);
  EXPECT_GT(lsi::core::flops_update_terms(
                bump([](FlopModelParams& y) { y.n *= 2; })), t0);
  EXPECT_GT(lsi::core::flops_update_terms(
                bump([](FlopModelParams& y) { y.q *= 2; })), t0);
  // Correction with j.
  const auto w0 = lsi::core::flops_update_weights(x);
  EXPECT_GT(lsi::core::flops_update_weights(
                bump([](FlopModelParams& y) { y.j *= 2; })), w0);
  // Recompute with nnz_a.
  const auto r0 = lsi::core::flops_recompute(x);
  EXPECT_GT(lsi::core::flops_recompute(
                bump([](FlopModelParams& y) { y.nnz_a *= 2; })), r0);
}

TEST(FlopsProperty, FoldToUpdateCrossoverExists) {
  // The paper: folding is far cheaper for d << n but the gap closes as the
  // batch approaches the collection size.
  auto x = base();
  x.p = 1;
  x.nnz_d = 60;
  const double tiny_ratio =
      static_cast<double>(lsi::core::flops_fold_documents(x)) /
      static_cast<double>(lsi::core::flops_update_documents(x));
  x.p = x.n;  // batch as large as the collection
  x.nnz_d = 60 * x.n;
  const double huge_ratio =
      static_cast<double>(lsi::core::flops_fold_documents(x)) /
      static_cast<double>(lsi::core::flops_update_documents(x));
  EXPECT_LT(tiny_ratio, 0.01);
  EXPECT_GT(huge_ratio, 1.0);
}

TEST(FlopsProperty, RotationTermMatchesPaperFormula) {
  // The (2k^2 - k)(m + n) dense-rotation cost must appear verbatim: with
  // everything else zeroed, updating costs exactly that.
  FlopModelParams x;
  x.m = 123;
  x.n = 45;
  x.k = 7;
  EXPECT_EQ(lsi::core::flops_update_documents(x),
            (2 * 7ull * 7 - 7) * (123 + 45));
  EXPECT_EQ(lsi::core::flops_update_terms(x),
            (2 * 7ull * 7 - 7) * (123 + 45));
}

TEST(FlopsProperty, ZeroEverythingIsZero) {
  FlopModelParams x;
  EXPECT_EQ(lsi::core::flops_fold_documents(x), 0u);
  EXPECT_EQ(lsi::core::flops_fold_terms(x), 0u);
  EXPECT_EQ(lsi::core::flops_update_documents(x), 0u);
  EXPECT_EQ(lsi::core::flops_recompute(x), 0u);
}

TEST(FlopsProperty, MeasuredFlopsAreKernelInvariant) {
  // The instrumented QueryStats counters tally operations of the algorithm,
  // not instructions of the active kernel: forcing a different kernel must
  // leave every measured flop count unchanged — and, because the scoring
  // sweep is built only from elementwise kernels, the scores themselves are
  // bit-identical too.
  using namespace lsi;
  core::IndexOptions opts;
  opts.k = 10;
  const auto index = core::LsiIndex::try_build(data::med_topics(), opts).value();
  const core::SemanticSpace& space = index.space();
  const core::BatchedRetriever retriever(space);
  const auto batch = core::QueryBatch::try_from_projected(
      space, {space.doc_vector(0), space.doc_vector(3)}).value();

  std::vector<std::string> names{"portable"};
  if (la::kern::cpu_has_avx2() && la::kern::avx2() != nullptr) {
    names.push_back("avx2");
  }
  std::uint64_t flops0 = 0;
  la::DenseMatrix scores0;
  for (std::size_t ki = 0; ki < names.size(); ++ki) {
    ASSERT_TRUE(la::kern::force(names[ki]));
    core::QueryStats stats;
    const la::DenseMatrix scores =
        retriever.scores(batch, core::SimilarityMode::kColumnSpace, &stats);
    if (ki == 0) {
      flops0 = stats.flops;
      scores0 = scores;
      EXPECT_GT(flops0, 0u);
    } else {
      EXPECT_EQ(stats.flops, flops0) << names[ki];
      ASSERT_EQ(scores.rows(), scores0.rows());
      for (core::index_t i = 0; i < scores.rows(); ++i) {
        for (core::index_t j = 0; j < scores.cols(); ++j) {
          ASSERT_EQ(scores0(i, j), scores(i, j))
              << names[ki] << " (" << i << "," << j << ")";
        }
      }
    }
  }
  la::kern::force("auto");
}

}  // namespace
