// Failpoint-driven failover chaos tests (label "stress-replication", run
// under ThreadSanitizer in CI). Every fault is injected deterministically
// through util/failpoint.hpp — a wedged replica is a writer parked at the
// "concurrent.fold" site, observed via wait_for_blocked, never a sleep race
// — and every recovery is proven by byte-comparing the recovered replica's
// rankings against an unfaulted reference fed the identical sequence.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <string>
#include <thread>
#include <vector>

#include "lsi/sharding/replica_set.hpp"
#include "synth/corpus.hpp"
#include "util/failpoint.hpp"

namespace {

using namespace lsi;
using util::Failpoints;
using Action = util::Failpoints::Action;
using namespace std::chrono_literals;

synth::SyntheticCorpus small_corpus(std::uint64_t seed) {
  synth::CorpusSpec spec;
  spec.topics = 4;
  spec.concepts_per_topic = 8;
  spec.docs_per_topic = 15;
  spec.queries_per_topic = 2;
  spec.seed = seed;
  return synth::generate_corpus(spec);
}

core::LsiIndex base_index(const synth::SyntheticCorpus& corpus,
                          std::size_t train) {
  text::Collection head(corpus.docs.begin(), corpus.docs.begin() + train);
  core::IndexOptions opts;
  opts.k = 12;
  return core::LsiIndex::try_build(head, opts).value();
}

/// Small queue so a wedged replica hits capacity after a handful of docs;
/// everything ranking-relevant (consolidation cadence, ANN cutoff) is a
/// function of the document sequence only, so a faulted set and an unfaulted
/// reference built with the same options stay byte-comparable.
core::ReplicaOptions chaos_opts(std::size_t replicas) {
  core::ReplicaOptions opts;
  opts.replicas = replicas;
  opts.concurrent.queue_capacity = 4;
  opts.concurrent.consolidate_every = 8;
  opts.concurrent.max_batch = 4;
  opts.concurrent.ann.exact_cutoff = 16;
  // A wedged writer is frozen for ever, so a wide strike window costs the
  // ejection path half a second and nothing else — while making it
  // impossible for a healthy writer the sanitizer's serialized scheduler
  // hasn't run yet to collect strikes and get ejected as a false positive.
  opts.strike_interval = std::chrono::milliseconds(250);
  return opts;
}

/// Bounded wait for a replica's fold counter. Only used on writers that are
/// NOT wedged, so termination is guaranteed — this observes progress, it
/// does not substitute a sleep for synchronization.
[[nodiscard]] bool wait_for_ingested(const core::ReplicaSet& set,
                                     std::size_t r, std::uint64_t count) {
  const auto deadline = std::chrono::steady_clock::now() + 30s;
  while (set.replica(r).ingested() < count) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(1ms);
  }
  return true;
}

/// Declared AFTER the ReplicaSet under test (and any reader threads), so it
/// runs BEFORE their destructors on every exit path: an early ASSERT return
/// must release parked writers or the set's destructor blocks joining them.
/// The fixture's TearDown also disarms, but locals are already gone by then.
struct DisarmOnExit {
  ~DisarmOnExit() { Failpoints::instance().disarm_all(); }
};

void expect_identical(const std::vector<core::QueryResult>& a,
                      const std::vector<core::QueryResult>& b,
                      const std::string& what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].doc, b[i].doc) << what << " rank " << i;
    EXPECT_EQ(a[i].label, b[i].label) << what << " rank " << i;
    EXPECT_EQ(a[i].cosine, b[i].cosine) << what << " rank " << i;
  }
}

/// Failpoints are process-global: always leave the registry clean, even on
/// early ASSERT exits, or a wedged writer blocks the ReplicaSet destructor.
class ReplicationChaosTest : public ::testing::Test {
 protected:
  void SetUp() override { Failpoints::instance().disarm_all(); }
  void TearDown() override { Failpoints::instance().disarm_all(); }
};

TEST_F(ReplicationChaosTest, WedgedReplicaIsStruckOutAndReplayConverges) {
  auto corpus = small_corpus(21);
  auto& fp = Failpoints::instance();
  core::ReplicaSet set(base_index(corpus, 30), chaos_opts(3));
  DisarmOnExit disarm_guard;

  // Wedge replica 1 only: its writer parks at the fold site; r0/r2 match
  // neither the tag filter nor, therefore, the fault.
  fp.arm("concurrent.fold", Action::kBlock, "r1");
  ASSERT_TRUE(set.add(corpus.docs[30]).ok());
  ASSERT_TRUE(fp.wait_for_blocked("concurrent.fold", 1, 10s));
  EXPECT_EQ(set.replica(1).ingested(), 0u);  // parked before the fold

  // Fill the wedged replica's queue to capacity (4). These are accepted by
  // every replica — the fan-out probe still finds room everywhere.
  for (std::size_t d = 31; d < 35; ++d) {
    ASSERT_TRUE(set.add(corpus.docs[d]).ok());
  }
  ASSERT_EQ(set.healthy_count(), 3u);

  // The next add finds r1 full with a frozen fold counter while its
  // siblings have room: three strikes inside the blocking add() (spaced by
  // the strike window), ejection, then the add itself succeeds against the
  // survivors. The outcome needs no sleeps to be deterministic — the strike
  // evidence (full + frozen) is pinned by the parked writer, so any window
  // width observes it.
  ASSERT_TRUE(set.add(corpus.docs[35]).ok());
  EXPECT_EQ(set.state(1), core::ReplicaState::kEjected);
  EXPECT_EQ(set.healthy_count(), 2u);
  EXPECT_EQ(fp.hits("concurrent.fold"), 1u);  // only the parked hit matched

  // Life goes on for the surviving pair: more docs, a consolidation marker
  // the ejected replica must replay at the same log position, more docs.
  for (std::size_t d = 36; d < 42; ++d) {
    ASSERT_TRUE(set.add(corpus.docs[d]).ok());
  }
  ASSERT_TRUE(set.consolidate().ok());
  for (std::size_t d = 42; d < 50; ++d) {
    ASSERT_TRUE(set.add(corpus.docs[d]).ok());
  }
  set.flush();

  // Un-wedge and recover. The released writer first drains the 5 entries
  // accepted before ejection (fed cursor = 5), then replay supplies the
  // rest; FIFO queue order keeps the fold sequence exact.
  fp.disarm("concurrent.fold");
  ASSERT_TRUE(set.readmit(1).ok());
  EXPECT_EQ(set.state(1), core::ReplicaState::kHealthy);
  set.flush();

  // The recovered replica is byte-identical to an unfaulted reference fed
  // the identical document sequence with the identical options.
  core::ReplicaSet reference(base_index(corpus, 30), chaos_opts(1));
  for (std::size_t d = 30; d < 36; ++d) {
    ASSERT_TRUE(reference.add(corpus.docs[d]).ok());
  }
  for (std::size_t d = 36; d < 42; ++d) {
    ASSERT_TRUE(reference.add(corpus.docs[d]).ok());
  }
  ASSERT_TRUE(reference.consolidate().ok());
  for (std::size_t d = 42; d < 50; ++d) {
    ASSERT_TRUE(reference.add(corpus.docs[d]).ok());
  }
  reference.flush();

  core::SearchOptions exact;
  exact.search = core::SearchMode::kExact;
  core::SearchOptions pruned;
  pruned.search = core::SearchMode::kPruned;
  pruned.nprobe = 3;
  auto ref_snap = reference.pick_reader().snapshot;
  ASSERT_EQ(ref_snap->space().num_docs(), 50u);
  for (std::size_t r = 0; r < 3; ++r) {
    auto snap = set.replica(r).snapshot();
    ASSERT_EQ(snap->space().num_docs(), 50u) << "replica " << r;
    for (const auto& q : corpus.queries) {
      expect_identical(ref_snap->query(q.text, exact),
                       snap->query(q.text, exact),
                       "exact vs unfaulted, replica " + std::to_string(r));
      expect_identical(ref_snap->query(q.text, pruned),
                       snap->query(q.text, pruned),
                       "pruned vs unfaulted, replica " + std::to_string(r));
    }
  }
  set.shutdown();
  reference.shutdown();
}

TEST_F(ReplicationChaosTest, HealthCheckEjectsFrozenFullReplica) {
  auto corpus = small_corpus(22);
  auto& fp = Failpoints::instance();
  core::ReplicaSet set(base_index(corpus, 30), chaos_opts(3));
  DisarmOnExit disarm_guard;

  fp.arm("concurrent.fold", Action::kBlock, "r1");
  ASSERT_TRUE(set.add(corpus.docs[30]).ok());
  ASSERT_TRUE(fp.wait_for_blocked("concurrent.fold", 1, 10s));
  for (std::size_t d = 31; d < 35; ++d) {
    ASSERT_TRUE(set.add(corpus.docs[d]).ok());
  }
  // Quiesce the healthy siblings first: the probes below must be about r1's
  // frozen queue, not about r0/r2 still being mid-drain on a slow host —
  // a replica with a non-full queue is never a health suspect.
  ASSERT_TRUE(wait_for_ingested(set, 0, 5));
  ASSERT_TRUE(wait_for_ingested(set, 2, 5));

  // r1's queue sits at capacity with a frozen fold counter. One observation
  // is "maybe just busy"; the second consecutive one is a wedge.
  EXPECT_EQ(set.check_health(), 0u);
  EXPECT_EQ(set.check_health(), 1u);
  EXPECT_EQ(set.state(1), core::ReplicaState::kEjected);
  EXPECT_EQ(set.healthy_count(), 2u);

  fp.disarm("concurrent.fold");
  ASSERT_TRUE(set.readmit(1).ok());
  set.flush();
  EXPECT_EQ(set.replica(1).ingested(), 5u);
  set.shutdown();
}

TEST_F(ReplicationChaosTest, HealthProbeFailpointModelsProbeTimeout) {
  auto corpus = small_corpus(23);
  auto& fp = Failpoints::instance();
  core::ReplicaSet set(base_index(corpus, 40), chaos_opts(3));

  fp.arm("replica.health_probe", Action::kFail, "r2", 1);
  EXPECT_EQ(set.check_health(), 1u);
  EXPECT_EQ(set.state(2), core::ReplicaState::kEjected);
  // The budget auto-disarmed the probe fault: the next sweep is clean and a
  // readmitted replica stays healthy.
  ASSERT_TRUE(set.readmit(2).ok());
  EXPECT_EQ(set.check_health(), 0u);
  EXPECT_EQ(set.healthy_count(), 3u);
  set.shutdown();
}

TEST_F(ReplicationChaosTest, UniformBackpressureEjectsNobody) {
  auto corpus = small_corpus(24);
  auto& fp = Failpoints::instance();
  core::ReplicaSet set(base_index(corpus, 30), chaos_opts(2));
  DisarmOnExit disarm_guard;

  // Wedge EVERY replica ("" filter) and fill every queue.
  fp.arm("concurrent.fold", Action::kBlock);
  ASSERT_TRUE(set.add(corpus.docs[30]).ok());
  ASSERT_TRUE(fp.wait_for_blocked("concurrent.fold", 2, 10s));
  for (std::size_t d = 31; d < 35; ++d) {
    ASSERT_TRUE(set.add(corpus.docs[d]).ok());
  }

  // Saturation is load, not a fault: the write is refused, nobody ejected.
  EXPECT_EQ(set.try_add(corpus.docs[35]).code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(set.try_add(corpus.docs[35]).code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(set.healthy_count(), 2u);

  // Reads stay available throughout (stale, from the base generation).
  auto ref = set.pick_reader();
  ASSERT_NE(ref.snapshot, nullptr);
  EXPECT_EQ(ref.snapshot->space().num_docs(), 30u);

  fp.disarm("concurrent.fold");
  set.flush();
  EXPECT_EQ(set.replica(0).ingested(), 5u);
  EXPECT_EQ(set.replica(1).ingested(), 5u);
  ASSERT_TRUE(set.try_add(corpus.docs[35]).ok());
  set.flush();
  set.shutdown();
}

TEST_F(ReplicationChaosTest, PublishWedgeDelaysVisibilityOnly) {
  auto corpus = small_corpus(25);
  auto& fp = Failpoints::instance();
  core::ReplicaSet set(base_index(corpus, 40), chaos_opts(2));
  DisarmOnExit disarm_guard;

  fp.arm("concurrent.publish", Action::kBlock, "r0");
  ASSERT_TRUE(set.add(corpus.docs[40]).ok());
  ASSERT_TRUE(fp.wait_for_blocked("concurrent.publish", 1, 10s));
  // r0 folded the doc but its publish is parked: readers still see the base
  // generation there, while r1 has moved on.
  EXPECT_EQ(set.replica(0).ingested(), 1u);
  EXPECT_EQ(set.replica(0).snapshot()->generation(), 1u);
  set.replica(1).snapshot();  // r1 unaffected
  fp.disarm("concurrent.publish");
  set.flush();
  EXPECT_GE(set.replica(0).snapshot()->generation(), 2u);
  EXPECT_EQ(set.replica(0).snapshot()->space().num_docs(), 41u);
  set.shutdown();
}

TEST_F(ReplicationChaosTest, MidReplayReadsSkipTheReplayingReplica) {
  auto corpus = small_corpus(26);
  auto& fp = Failpoints::instance();
  core::ReplicaSet set(base_index(corpus, 30), chaos_opts(3));
  for (std::size_t d = 30; d < 35; ++d) {
    ASSERT_TRUE(set.add(corpus.docs[d]).ok());
  }
  set.flush();
  ASSERT_TRUE(set.eject(1).ok());
  for (std::size_t d = 35; d < 40; ++d) {
    ASSERT_TRUE(set.add(corpus.docs[d]).ok());
  }
  set.flush();

  // Freeze the replay mid-flight and observe the intermediate state.
  fp.arm("replica.replay", Action::kBlock, "r1");
  std::thread readmitter([&] { EXPECT_TRUE(set.readmit(1).ok()); });
  // On every exit path: release the parked replay, then the readmitter can
  // finish and be joined (before the set's destructor, which it touches).
  struct JoinOnExit {
    std::thread& t;
    ~JoinOnExit() {
      Failpoints::instance().disarm_all();
      if (t.joinable()) t.join();
    }
  } join_guard{readmitter};
  ASSERT_TRUE(fp.wait_for_blocked("replica.replay", 1, 10s));
  EXPECT_EQ(set.state(1), core::ReplicaState::kReplaying);
  for (int i = 0; i < 6; ++i) {
    EXPECT_NE(set.pick_reader().replica, 1u);  // healthy siblings preferred
  }
  // Writes continue during the replay (still at quorum with 2 healthy).
  ASSERT_TRUE(set.add(corpus.docs[40]).ok());

  fp.disarm("replica.replay");
  readmitter.join();
  EXPECT_EQ(set.state(1), core::ReplicaState::kHealthy);
  set.flush();
  // The replay chased the log past the concurrent write too.
  EXPECT_EQ(set.replica(1).ingested(), 11u);
  set.shutdown();
}

// The TSan target: queries hammer pick_reader() while a replica is wedged,
// struck out, released and replayed. Byte-parity at the end proves the
// recovery; the sanitizer proves the path is race-free.
TEST_F(ReplicationChaosTest, QueriesRunCleanAcrossWedgeEjectReplay) {
  auto corpus = small_corpus(27);
  auto& fp = Failpoints::instance();
  core::ReplicaSet set(base_index(corpus, 30), chaos_opts(3));

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> queries{0};
  std::vector<std::thread> readers;
  // On every exit path — including an early ASSERT return — release any
  // parked writer, stop the readers, and join them before `readers` and
  // `set` are destroyed (an unjoined std::thread terminates the process).
  struct StopAndJoin {
    std::atomic<bool>& stop;
    std::vector<std::thread>& readers;
    ~StopAndJoin() {
      Failpoints::instance().disarm_all();
      stop.store(true, std::memory_order_relaxed);
      for (auto& t : readers) {
        if (t.joinable()) t.join();
      }
    }
  } join_guard{stop, readers};
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      core::SearchOptions opts;
      opts.z = 10;
      while (!stop.load(std::memory_order_relaxed)) {
        auto ref = set.pick_reader();
        ASSERT_NE(ref.snapshot, nullptr);
        ref.gate->in_flight.fetch_add(1, std::memory_order_relaxed);
        auto results = ref.snapshot->query(
            corpus.queries[static_cast<std::size_t>(t) %
                           corpus.queries.size()]
                .text,
            opts);
        EXPECT_FALSE(results.empty());
        ref.gate->in_flight.fetch_sub(1, std::memory_order_relaxed);
        queries.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  fp.arm("concurrent.fold", Action::kBlock, "r2");
  ASSERT_TRUE(set.add(corpus.docs[30]).ok());
  ASSERT_TRUE(fp.wait_for_blocked("concurrent.fold", 1, 10s));
  for (std::size_t d = 31; d < 35; ++d) {
    ASSERT_TRUE(set.add(corpus.docs[d]).ok());
  }
  // Strike-out happens inside this blocking add (full + frozen + siblings
  // progressing), after which the write lands on the survivors.
  ASSERT_TRUE(set.add(corpus.docs[35]).ok());
  ASSERT_EQ(set.state(2), core::ReplicaState::kEjected);
  for (std::size_t d = 36; d < 45; ++d) {
    ASSERT_TRUE(set.add(corpus.docs[d]).ok());
  }
  set.flush();

  fp.disarm("concurrent.fold");
  ASSERT_TRUE(set.readmit(2).ok());
  set.flush();
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : readers) t.join();
  EXPECT_GT(queries.load(), 0u);

  // Convergence: the recovered replica agrees with its never-faulted peer.
  core::SearchOptions exact;
  exact.search = core::SearchMode::kExact;
  auto snap0 = set.replica(0).snapshot();
  auto snap2 = set.replica(2).snapshot();
  EXPECT_EQ(snap2->space().num_docs(), 45u);
  for (const auto& q : corpus.queries) {
    expect_identical(snap0->query(q.text, exact), snap2->query(q.text, exact),
                     "post-chaos parity");
  }
  set.shutdown();
}

}  // namespace
