// Concurrent maintenance of the cluster-pruned structure (label "stress",
// run under ThreadSanitizer in CI): the AnnIndex rides the snapshot-publish
// protocol exactly like the prewarmed norm caches — extended in place on
// fold-in publishes (build generation carried over), rebuilt from scratch
// when consolidation rotates V (build generation bumps), and always
// immutable once published, so reader threads race writer publishes only
// through the shared_ptr swap.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "lsi/batched_retrieval.hpp"
#include "lsi/concurrent.hpp"
#include "synth/corpus.hpp"

namespace {

using namespace lsi;
using namespace lsi::core;

synth::SyntheticCorpus stress_corpus(std::uint64_t seed) {
  synth::CorpusSpec spec;
  spec.topics = 4;
  spec.concepts_per_topic = 6;
  spec.docs_per_topic = 30;  // 120 docs
  spec.queries_per_topic = 2;
  spec.seed = seed;
  return synth::generate_corpus(spec);
}

ConcurrentIndexer make_indexer(const synth::SyntheticCorpus& corpus,
                               std::size_t train) {
  text::Collection head(corpus.docs.begin(), corpus.docs.begin() + train);
  IndexOptions iopts;
  iopts.k = 10;
  ConcurrentOptions copts;
  copts.ann.exact_cutoff = 0;  // always build, even on this small corpus
  copts.consolidate_every = 0;  // only on explicit consolidate()
  return ConcurrentIndexer(LsiIndex::try_build(head, iopts).value(), copts);
}

TEST(AnnConcurrent, FoldPublishExtendsConsolidateRebuilds) {
  const auto corpus = stress_corpus(7);
  auto indexer = make_indexer(corpus, 80);

  auto base = indexer.snapshot();
  ASSERT_NE(base->ann(), nullptr);
  EXPECT_EQ(base->ann()->num_docs(), 80u);
  EXPECT_EQ(base->ann()->build_generation(), base->generation());

  // Fold-in publish: the structure covers the new rows but the partition —
  // and with it the build generation — is unchanged.
  for (std::size_t d = 80; d < 90; ++d) {
    ASSERT_TRUE(indexer.add(corpus.docs[d]).ok());
  }
  indexer.flush();
  auto folded = indexer.snapshot();
  ASSERT_NE(folded->ann(), nullptr);
  EXPECT_EQ(folded->ann()->num_docs(), 90u);
  EXPECT_GT(folded->generation(), base->generation());
  EXPECT_EQ(folded->ann()->build_generation(), base->ann()->build_generation());
  EXPECT_EQ(folded->ann()->num_centroids(), base->ann()->num_centroids());

  // Consolidation rotates V: the owner must rebuild, bumping the build
  // generation to the consolidated snapshot's.
  ASSERT_TRUE(indexer.consolidate().ok());
  auto consolidated = indexer.snapshot();
  ASSERT_NE(consolidated->ann(), nullptr);
  EXPECT_EQ(consolidated->ann()->num_docs(), 90u);
  EXPECT_EQ(consolidated->ann()->build_generation(),
            consolidated->generation());
  EXPECT_GT(consolidated->ann()->build_generation(),
            folded->ann()->build_generation());

  indexer.shutdown();
}

TEST(AnnConcurrent, DisabledOptionsNeverPublishAStructure) {
  const auto corpus = stress_corpus(11);
  text::Collection head(corpus.docs.begin(), corpus.docs.begin() + 60);
  IndexOptions iopts;
  iopts.k = 8;
  ConcurrentOptions copts;
  copts.ann.enabled = false;
  copts.ann.exact_cutoff = 0;
  ConcurrentIndexer indexer(LsiIndex::try_build(head, iopts).value(), copts);
  EXPECT_EQ(indexer.snapshot()->ann(), nullptr);
  ASSERT_TRUE(indexer.add(corpus.docs[60]).ok());
  indexer.flush();
  EXPECT_EQ(indexer.snapshot()->ann(), nullptr);
  indexer.shutdown();
}

TEST(AnnConcurrent, PrunedReadersRaceWriterPublishes) {
  // Readers pin snapshots and run pruned queries (each against its own
  // snapshot's AnnIndex) while one writer folds the tail of the collection
  // in and consolidates periodically. TSan checks the publish handoff; the
  // functional assertion is that every pruned ranking agrees with the exact
  // ranking on the SAME snapshot, whatever generation the reader caught.
  const auto corpus = stress_corpus(13);
  auto indexer = make_indexer(corpus, 60);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> checked{0};
  const std::size_t kReaders = 3;

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (std::size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      std::size_t i = r;
      while (!stop.load(std::memory_order_relaxed)) {
        const auto snap = indexer.snapshot();
        const auto& query = corpus.queries[i++ % corpus.queries.size()];

        SearchOptions popts;
        popts.search = SearchMode::kPruned;
        popts.nprobe = snap->ann() != nullptr
                           ? snap->ann()->num_centroids()
                           : std::size_t{1};
        SearchOptions eopts;
        eopts.search = SearchMode::kExact;

        const auto pruned = snap->query(query.text, popts);
        const auto exact = snap->query(query.text, eopts);
        ASSERT_EQ(pruned.size(), exact.size());
        for (std::size_t j = 0; j < pruned.size(); ++j) {
          ASSERT_EQ(pruned[j].doc, exact[j].doc) << "rank " << j;
          ASSERT_EQ(pruned[j].cosine, exact[j].cosine) << "rank " << j;
        }
        checked.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  for (std::size_t d = 60; d < corpus.docs.size(); ++d) {
    ASSERT_TRUE(indexer.add(corpus.docs[d]).ok());
    if (d % 20 == 0) {
      indexer.flush();
      ASSERT_TRUE(indexer.consolidate().ok());
    }
  }
  indexer.flush();
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : readers) t.join();

  EXPECT_GT(checked.load(), 0u);
  const auto final_snap = indexer.snapshot();
  ASSERT_NE(final_snap->ann(), nullptr);
  EXPECT_EQ(final_snap->ann()->num_docs(), corpus.docs.size());
  indexer.shutdown();
}

}  // namespace
