// SearchOptions unit tests: the Validate() contract the HTTP daemon's 400
// answers lean on, the internal QueryOptions bridge to the SemanticSpace
// scorers, and the deadline helpers' edge cases.

#include <gtest/gtest.h>

#include <chrono>

#include "lsi/search_options.hpp"

namespace {

using namespace lsi;
using namespace lsi::core;

TEST(SearchOptions, DefaultsValidate) {
  const SearchOptions opts;
  EXPECT_TRUE(opts.Validate().ok());
  EXPECT_EQ(opts.search, SearchMode::kAuto);
  EXPECT_EQ(opts.nprobe, 0u);
  EXPECT_DOUBLE_EQ(opts.recall_target, 0.95);
  EXPECT_FALSE(opts.has_deadline());
  EXPECT_FALSE(opts.deadline_expired());
}

TEST(SearchOptions, NprobeWithExactModeRejected) {
  SearchOptions opts;
  opts.search = SearchMode::kExact;
  opts.nprobe = 4;
  const Status s = opts.Validate();
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("nprobe"), std::string::npos);

  // The same nprobe is fine under kPruned and kAuto.
  opts.search = SearchMode::kPruned;
  EXPECT_TRUE(opts.Validate().ok());
  opts.search = SearchMode::kAuto;
  EXPECT_TRUE(opts.Validate().ok());
}

TEST(SearchOptions, RecallTargetMustBeInUnitInterval) {
  SearchOptions opts;
  opts.recall_target = 0.0;
  EXPECT_EQ(opts.Validate().code(), StatusCode::kInvalidArgument);
  opts.recall_target = -0.5;
  EXPECT_EQ(opts.Validate().code(), StatusCode::kInvalidArgument);
  opts.recall_target = 1.5;
  EXPECT_EQ(opts.Validate().code(), StatusCode::kInvalidArgument);
  opts.recall_target = 1.0;  // inclusive upper bound: "exact, please"
  EXPECT_TRUE(opts.Validate().ok());
  opts.recall_target = 1e-9;
  EXPECT_TRUE(opts.Validate().ok());
}

TEST(SearchOptions, MinCosineAboveOneRejected) {
  SearchOptions opts;
  opts.min_cosine = 1.25;
  EXPECT_EQ(opts.Validate().code(), StatusCode::kInvalidArgument);
  opts.min_cosine = 1.0;
  EXPECT_TRUE(opts.Validate().ok());
  opts.min_cosine = -1.0;
  EXPECT_TRUE(opts.Validate().ok());
}

// query_options()/FromQuery stay (they bridge to the SemanticSpace scorers
// internally) even though the deprecated QueryOptions member overloads are
// gone; the round trip must keep preserving the exact-path knobs.
TEST(SearchOptions, QueryOptionsRoundTripPreservesExactPathKnobs) {
  SearchOptions opts;
  opts.z = 17;
  opts.mode = SimilarityMode::kProjected;
  opts.min_cosine = 0.25;
  opts.nprobe = 3;  // pruning knobs do not survive the bridge by design

  const QueryOptions q = opts.query_options();
  EXPECT_EQ(q.top_z, 17u);
  EXPECT_EQ(q.mode, SimilarityMode::kProjected);
  EXPECT_DOUBLE_EQ(q.min_cosine, 0.25);

  const SearchOptions back = SearchOptions::FromQuery(q);
  EXPECT_EQ(back.z, opts.z);
  EXPECT_EQ(back.mode, opts.mode);
  EXPECT_DOUBLE_EQ(back.min_cosine, opts.min_cosine);
  // A legacy caller never expressed a pruning preference: kAuto, not kExact.
  EXPECT_EQ(back.search, SearchMode::kAuto);
  EXPECT_EQ(back.nprobe, 0u);
}

TEST(SearchOptions, DeadlineHelpers) {
  SearchOptions opts;
  opts.deadline = std::chrono::steady_clock::now() + std::chrono::hours(1);
  EXPECT_TRUE(opts.has_deadline());
  EXPECT_FALSE(opts.deadline_expired());

  opts.deadline = std::chrono::steady_clock::now() - std::chrono::hours(1);
  EXPECT_TRUE(opts.has_deadline());
  EXPECT_TRUE(opts.deadline_expired());
}

TEST(SearchMode, Names) {
  EXPECT_EQ(search_mode_name(SearchMode::kAuto), "auto");
  EXPECT_EQ(search_mode_name(SearchMode::kExact), "exact");
  EXPECT_EQ(search_mode_name(SearchMode::kPruned), "pruned");
}

}  // namespace
