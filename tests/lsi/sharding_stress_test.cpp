// Sharded concurrency stress test (CTest label "stress"): producer threads
// ingest through the router while reader threads pin ShardedSnapshots and
// run scatter-gather batches. Under ThreadSanitizer this exercises the two
// shared structures the sharded layer adds on top of ConcurrentIndexer —
// the routing state (mutex-serialized global id assignment) and the
// copy-on-write shard-local → global id maps — plus the scatter fan-out
// pool. Assertions are invariant-shaped: global ids unique and in range,
// id maps always covering the pinned snapshots, accepted documents
// conserved across shards.

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "lsi/lsi.hpp"
#include "synth/corpus.hpp"

namespace {

using namespace lsi;
using namespace lsi::core;

constexpr std::size_t kReaders = 4;
constexpr std::size_t kProducers = 3;
constexpr std::size_t kQueriesPerReader = 120;
constexpr std::size_t kBatch = 4;

TEST(ShardedStress, ScatterGatherRacesWithIngest) {
  synth::CorpusSpec spec;
  spec.topics = 4;
  spec.concepts_per_topic = 6;
  spec.docs_per_topic = 40;  // 160 docs
  spec.queries_per_topic = 4;
  spec.seed = 777;
  auto corpus = synth::generate_corpus(spec);
  const std::size_t train = 64;

  core::ShardingOptions sopts;
  sopts.num_shards = 4;
  sopts.index.k = 12;
  sopts.concurrent.queue_capacity = 8;  // small: exercises backpressure
  sopts.concurrent.consolidate_every = 16;
  sopts.concurrent.max_batch = 4;

  text::Collection head(corpus.docs.begin(), corpus.docs.begin() + train);
  auto built = core::ShardedIndex::try_build(head, sopts);
  ASSERT_TRUE(built.ok()) << built.status().to_string();
  auto& index = *built;

  // --- producers: split the tail, mixing blocking add and try_add --------
  std::atomic<std::size_t> accepted{0};
  const std::size_t tail = corpus.docs.size() - train;
  std::vector<std::thread> producers;
  const std::size_t per_producer = tail / kProducers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      const std::size_t begin = train + p * per_producer;
      const std::size_t end =
          (p + 1 == kProducers) ? corpus.docs.size() : begin + per_producer;
      for (std::size_t d = begin; d < end; ++d) {
        if (d % 2 == 0) {
          ASSERT_TRUE(index.add(corpus.docs[d]).ok());
        } else {
          for (;;) {
            const Status s = index.try_add(corpus.docs[d]);
            if (s.ok()) break;
            ASSERT_EQ(s.code(), StatusCode::kResourceExhausted)
                << s.message();
            std::this_thread::yield();
          }
        }
        accepted.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // --- readers: pin a sharded snapshot, batch-query, check invariants ----
  std::atomic<std::size_t> queries_done{0};
  std::vector<std::thread> readers;
  for (std::size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      for (std::size_t i = 0; i < kQueriesPerReader; i += kBatch) {
        std::vector<std::string> texts;
        for (std::size_t b = 0; b < kBatch; ++b) {
          const auto& q = corpus.queries[(r * kQueriesPerReader + i + b) %
                                         corpus.queries.size()];
          texts.push_back(q.text);
        }
        const auto snap = index.snapshot();

        // Id maps always cover the pinned shard snapshots (never shorter),
        // and the pinned doc count never shrinks below the base build.
        index_t snap_docs = 0;
        for (std::size_t s = 0; s < snap.num_shards(); ++s) {
          const auto& view = snap.shard(s);
          ASSERT_GE(view.global_ids->size(),
                    view.snapshot->doc_labels().size());
          snap_docs += view.snapshot->space().num_docs();
        }
        ASSERT_GE(static_cast<std::size_t>(snap_docs), train);

        core::SearchOptions qopts;
        qopts.z = 10;
        const auto ranked = snap.rank_batch(texts, qopts);
        ASSERT_EQ(ranked.size(), texts.size());
        for (const auto& lane : ranked) {
          ASSERT_LE(lane.size(), qopts.z);
          std::set<index_t> ids;
          for (const auto& sd : lane) {
            // Global ids are unique within a ranking and within the id
            // space handed out so far (base + everything ever accepted).
            ASSERT_TRUE(ids.insert(sd.doc).second);
            ASSERT_LT(static_cast<std::size_t>(sd.doc), corpus.docs.size());
          }
          for (std::size_t j = 1; j < lane.size(); ++j) {
            ASSERT_TRUE(core::ranks_before(lane[j - 1], lane[j]));
          }
        }
        queries_done.fetch_add(texts.size(), std::memory_order_relaxed);
      }
    });
  }

  // --- consolidation driver: all-shard SVD updates mid-stream ------------
  std::thread driver([&] {
    for (int i = 0; i < 2; ++i) {
      std::this_thread::yield();
      ASSERT_TRUE(index.consolidate().ok());
    }
  });

  for (auto& t : producers) t.join();
  driver.join();
  for (auto& t : readers) t.join();
  index.flush();

  EXPECT_GE(queries_done.load() + accepted.load(), 500u);
  EXPECT_EQ(index.ingested(), tail);

  // Conservation: after the flush, every document is in exactly one shard
  // and global ids form exactly [0, n). Base documents keep their build
  // positions as ids; tail ids are handed out in (nondeterministic) arrival
  // order, so for those only label conservation is checked.
  const auto snap = index.snapshot();
  ASSERT_EQ(snap.num_docs(), static_cast<index_t>(corpus.docs.size()));
  std::set<index_t> gids;
  std::set<std::string> seen_labels;
  for (std::size_t s = 0; s < snap.num_shards(); ++s) {
    const auto& view = snap.shard(s);
    const auto& labels = view.snapshot->doc_labels();
    ASSERT_EQ(view.global_ids->size(), labels.size());
    for (std::size_t j = 0; j < labels.size(); ++j) {
      const index_t gid = (*view.global_ids)[j];
      ASSERT_TRUE(gids.insert(gid).second) << "duplicate global id " << gid;
      ASSERT_LT(static_cast<std::size_t>(gid), corpus.docs.size());
      if (static_cast<std::size_t>(gid) < train) {
        EXPECT_EQ(labels[j], corpus.docs[gid].label);
      }
      EXPECT_TRUE(seen_labels.insert(labels[j]).second)
          << "duplicate label " << labels[j];
    }
  }
  EXPECT_EQ(gids.size(), corpus.docs.size());
  for (const auto& doc : corpus.docs) {
    EXPECT_EQ(seen_labels.count(doc.label), 1u) << "lost " << doc.label;
  }

  // Clean shutdown while a snapshot is still pinned.
  index.shutdown();
  EXPECT_EQ(snap.num_docs(), static_cast<index_t>(corpus.docs.size()));
}

}  // namespace
