// Semantic-space construction and geometry tests.

#include <gtest/gtest.h>

#include <cmath>

#include "la/jacobi_svd.hpp"
#include "lsi/semantic_space.hpp"
#include "synth/sparse_random.hpp"

namespace {

using namespace lsi;
using namespace lsi::core;

TEST(SemanticSpace, DimensionsAndAccessors) {
  auto a = synth::random_sparse_matrix(30, 20, 0.2, 1);
  auto space = try_build_semantic_space(a, 5).value();
  EXPECT_EQ(space.k(), 5u);
  EXPECT_EQ(space.num_terms(), 30u);
  EXPECT_EQ(space.num_docs(), 20u);
  EXPECT_EQ(space.term_vector(3).size(), 5u);
  EXPECT_EQ(space.doc_vector(7).size(), 5u);
}

TEST(SemanticSpace, SigmaDescending) {
  auto a = synth::random_sparse_matrix(25, 25, 0.3, 2);
  auto space = try_build_semantic_space(a, 8).value();
  for (std::size_t i = 1; i < space.sigma.size(); ++i) {
    EXPECT_LE(space.sigma[i], space.sigma[i - 1]);
  }
}

TEST(SemanticSpace, FullRankReconstructsExactly) {
  auto a = synth::random_sparse_matrix(12, 9, 0.5, 3);
  auto space = try_build_semantic_space(a, 9).value();
  EXPECT_LT(la::max_abs_diff(space.reconstruct(), a.to_dense()), 1e-9);
}

TEST(SemanticSpace, TruncationIsEckartYoungOptimal) {
  // ||A - A_k||_F^2 == sum of discarded sigma^2 (paper Theorem 2.2).
  auto a = synth::random_sparse_matrix(15, 12, 0.4, 4);
  auto full = la::jacobi_svd(a.to_dense());
  auto space = try_build_semantic_space(a, 4).value();
  auto diff = a.to_dense();
  diff.add_scaled(space.reconstruct(), -1.0);
  double tail = 0.0;
  for (std::size_t i = 4; i < full.s.size(); ++i) tail += full.s[i] * full.s[i];
  EXPECT_NEAR(diff.frobenius_norm() * diff.frobenius_norm(), tail, 1e-8);
}

TEST(SemanticSpace, DocCoordsAreSigmaScaledRows) {
  auto a = synth::random_sparse_matrix(20, 10, 0.4, 5);
  auto space = try_build_semantic_space(a, 3).value();
  auto coords = space.doc_coords(4);
  for (index_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(coords[i], space.v(4, i) * space.sigma[i]);
  }
}

TEST(SemanticSpace, LanczosAndJacobiPathsAgree) {
  auto a = synth::random_sparse_matrix(150, 110, 0.05, 6);
  BuildOptions dense_path;
  dense_path.k = 6;
  dense_path.dense_cutoff = 1000;  // force Jacobi
  BuildOptions lanczos_path;
  lanczos_path.k = 6;
  lanczos_path.dense_cutoff = 0;  // force Lanczos
  auto s1 = try_build_semantic_space(a, dense_path).value();
  auto s2 = try_build_semantic_space(a, lanczos_path).value();
  for (index_t i = 0; i < 6; ++i) {
    EXPECT_NEAR(s1.sigma[i], s2.sigma[i], 1e-7 * s1.sigma[0]);
  }
}

TEST(SemanticSpace, KClampedToRank) {
  auto a = synth::random_sparse_matrix(8, 5, 0.6, 7);
  auto space = try_build_semantic_space(a, 50).value();
  EXPECT_LE(space.k(), 5u);
}

TEST(AlignSigns, MatchesReferenceOrientation) {
  auto a = synth::random_sparse_matrix(20, 14, 0.3, 8);
  auto space = try_build_semantic_space(a, 3).value();
  // Flip a column, then align back to the original orientation.
  auto reference = space.u;
  la::scale(space.u.col(1), -1.0);
  la::scale(space.v.col(1), -1.0);
  align_signs_to(space, reference);
  EXPECT_LT(la::max_abs_diff(space.u, reference), 1e-12);
}

TEST(OrthogonalityLoss, ZeroForOrthonormal) {
  EXPECT_NEAR(orthogonality_loss(la::DenseMatrix::identity(6)), 0.0, 1e-12);
}

TEST(OrthogonalityLoss, DetectsDuplicateColumn) {
  // Two identical unit columns: Q^T Q = [[1,1],[1,1]], loss = 1.
  la::DenseMatrix q(4, 2);
  q(0, 0) = 1.0;
  q(0, 1) = 1.0;
  EXPECT_NEAR(orthogonality_loss(q), 1.0, 1e-12);
}

TEST(OrthogonalityLoss, GrowsWithPerturbation) {
  la::DenseMatrix q = la::DenseMatrix::identity(5);
  q(0, 1) = 0.1;  // slightly non-orthogonal
  const double small = orthogonality_loss(q);
  q(0, 1) = 0.5;
  const double large = orthogonality_loss(q);
  EXPECT_GT(small, 0.0);
  EXPECT_GT(large, small);
}

}  // namespace
