// ReplicaSet functional tests (label "unit-replication"): read parity across
// replicas after quiesce (exact AND pruned paths, R in {1,2,3}), reader
// policies, the eject -> replay -> rejoin protocol, write quorum, the
// consolidation marker, log trimming, and options validation. Fault-driven
// scenarios (wedged writers, strike ejection) live in
// replication_chaos_test.cpp under the "stress-replication" label.

#include <gtest/gtest.h>

#include <chrono>
#include <cstddef>
#include <string>
#include <vector>

#include "lsi/sharding/replica_set.hpp"
#include "synth/corpus.hpp"

namespace {

using namespace lsi;

synth::SyntheticCorpus small_corpus(std::uint64_t seed) {
  synth::CorpusSpec spec;
  spec.topics = 4;
  spec.concepts_per_topic = 8;
  spec.docs_per_topic = 15;
  spec.queries_per_topic = 2;
  spec.seed = seed;
  return synth::generate_corpus(spec);
}

core::LsiIndex base_index(const synth::SyntheticCorpus& corpus,
                          std::size_t train) {
  text::Collection head(corpus.docs.begin(), corpus.docs.begin() + train);
  core::IndexOptions opts;
  opts.k = 12;
  return core::LsiIndex::try_build(head, opts).value();
}

core::ReplicaOptions replica_opts(std::size_t replicas) {
  core::ReplicaOptions opts;
  opts.replicas = replicas;
  // Small thresholds so short tests cross consolidation and ANN-build
  // boundaries; what matters for parity is that every replica crosses them
  // at the same point of the document sequence.
  opts.concurrent.consolidate_every = 8;
  opts.concurrent.max_batch = 4;
  opts.concurrent.ann.exact_cutoff = 16;
  return opts;
}

/// Byte-compare two result lists (labels, doc ids, exact cosine bits).
void expect_identical(const std::vector<core::QueryResult>& a,
                      const std::vector<core::QueryResult>& b,
                      const std::string& what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].doc, b[i].doc) << what << " rank " << i;
    EXPECT_EQ(a[i].label, b[i].label) << what << " rank " << i;
    EXPECT_EQ(a[i].cosine, b[i].cosine) << what << " rank " << i;
  }
}

TEST(Replication, SingleReplicaDegeneratesToConcurrentIndexer) {
  auto corpus = small_corpus(1);
  core::ReplicaSet set(base_index(corpus, 40), replica_opts(1));
  EXPECT_EQ(set.num_replicas(), 1u);
  EXPECT_EQ(set.healthy_count(), 1u);
  EXPECT_EQ(set.options().quorum(), 1u);

  for (std::size_t d = 40; d < 50; ++d) {
    ASSERT_TRUE(set.add(corpus.docs[d]).ok());
  }
  set.flush();
  EXPECT_EQ(set.ingested(), 10u);

  auto ref = set.pick_reader();
  ASSERT_NE(ref.snapshot, nullptr);
  EXPECT_EQ(ref.replica, 0u);
  EXPECT_EQ(ref.snapshot->space().num_docs(), 50u);
  EXPECT_FALSE(ref.snapshot->query(corpus.queries[0].text).empty());
  set.shutdown();
}

TEST(Replication, QuiescedReplicasAnswerByteIdentically) {
  auto corpus = small_corpus(2);
  for (std::size_t replicas : {1u, 2u, 3u}) {
    core::ReplicaSet set(base_index(corpus, 30), replica_opts(replicas));
    for (std::size_t d = 30; d < 60; ++d) {
      ASSERT_TRUE(set.add(corpus.docs[d]).ok());
    }
    set.flush();  // quiesce: every replica has folded + published everything

    core::SearchOptions exact;
    exact.search = core::SearchMode::kExact;
    core::SearchOptions pruned;
    pruned.search = core::SearchMode::kPruned;
    pruned.nprobe = 3;

    for (std::size_t r = 0; r < replicas; ++r) {
      auto snap = set.replica(r).snapshot();
      ASSERT_NE(snap, nullptr) << "replica " << r;
      EXPECT_EQ(snap->space().num_docs(), 60u) << "replica " << r;
      // The ANN structure exists on every replica (60 docs > cutoff 16) and
      // was built at the same point of the shared document sequence.
      EXPECT_NE(snap->ann(), nullptr) << "replica " << r;
      if (r == 0) continue;
      auto snap0 = set.replica(0).snapshot();
      for (const auto& q : corpus.queries) {
        expect_identical(snap0->query(q.text, exact),
                         snap->query(q.text, exact),
                         "exact R=" + std::to_string(replicas) + " r=" +
                             std::to_string(r));
        expect_identical(snap0->query(q.text, pruned),
                         snap->query(q.text, pruned),
                         "pruned R=" + std::to_string(replicas) + " r=" +
                             std::to_string(r));
      }
    }
    set.shutdown();
  }
}

TEST(Replication, RoundRobinRotatesThroughHealthyReplicas) {
  auto corpus = small_corpus(3);
  core::ReplicaSet set(base_index(corpus, 40), replica_opts(3));
  std::vector<std::size_t> picks;
  for (int i = 0; i < 6; ++i) picks.push_back(set.pick_reader().replica);
  // Three replicas, six picks: every replica seen exactly twice, in rotation.
  for (std::size_t r = 0; r < 3; ++r) {
    EXPECT_EQ(picks[r], picks[r + 3]);
  }
  EXPECT_NE(picks[0], picks[1]);
  EXPECT_NE(picks[1], picks[2]);

  // An ejected replica drops out of the rotation.
  ASSERT_TRUE(set.eject(1).ok());
  for (int i = 0; i < 4; ++i) {
    EXPECT_NE(set.pick_reader().replica, 1u);
  }
  set.shutdown();
}

TEST(Replication, LeastLoadedPrefersIdleReplica) {
  auto corpus = small_corpus(4);
  auto opts = replica_opts(3);
  opts.read_policy = core::ReadPolicy::kLeastLoaded;
  core::ReplicaSet set(base_index(corpus, 40), opts);

  auto r0 = set.pick_reader();
  EXPECT_EQ(r0.replica, 0u);  // all idle: ties break to the lowest index
  // Simulate scatter passes in flight on replicas 0 and 1.
  r0.gate->in_flight.store(2);
  auto infos = set.replica_infos();
  ASSERT_EQ(infos.size(), 3u);
  EXPECT_EQ(infos[0].in_flight, 2u);
  auto r1 = set.pick_reader();
  EXPECT_EQ(r1.replica, 1u);
  r1.gate->in_flight.store(1);
  EXPECT_EQ(set.pick_reader().replica, 2u);
  // Load drains: back to the lowest index.
  r0.gate->in_flight.store(0);
  r1.gate->in_flight.store(0);
  EXPECT_EQ(set.pick_reader().replica, 0u);
  set.shutdown();
}

TEST(Replication, EjectReplayReadmitConvergesByteIdentically) {
  auto corpus = small_corpus(5);
  core::ReplicaSet set(base_index(corpus, 30), replica_opts(3));
  for (std::size_t d = 30; d < 40; ++d) {
    ASSERT_TRUE(set.add(corpus.docs[d]).ok());
  }
  set.flush();

  ASSERT_TRUE(set.eject(1).ok());
  EXPECT_EQ(set.state(1), core::ReplicaState::kEjected);
  EXPECT_EQ(set.healthy_count(), 2u);
  // Double-eject is a state error.
  EXPECT_EQ(set.eject(1).code(), StatusCode::kFailedPrecondition);

  // The ejected replica's pinned snapshot stays valid and stale.
  auto stale = set.replica(1).snapshot();
  EXPECT_EQ(stale->space().num_docs(), 40u);

  // Writes continue against the surviving pair (quorum 2 still met) —
  // including a consolidation marker mid-gap that replica 1 must replay at
  // the same log position.
  for (std::size_t d = 40; d < 48; ++d) {
    ASSERT_TRUE(set.add(corpus.docs[d]).ok());
  }
  ASSERT_TRUE(set.consolidate().ok());
  for (std::size_t d = 48; d < 55; ++d) {
    ASSERT_TRUE(set.add(corpus.docs[d]).ok());
  }
  set.flush();
  EXPECT_EQ(set.replica(1).ingested(), 10u);  // frozen at ejection

  ASSERT_TRUE(set.readmit(1).ok());
  EXPECT_EQ(set.state(1), core::ReplicaState::kHealthy);
  EXPECT_EQ(set.healthy_count(), 3u);
  // Readmitting a healthy replica is a state error.
  EXPECT_EQ(set.readmit(1).code(), StatusCode::kFailedPrecondition);
  set.flush();

  core::SearchOptions exact;
  exact.search = core::SearchMode::kExact;
  core::SearchOptions pruned;
  pruned.search = core::SearchMode::kPruned;
  pruned.nprobe = 3;
  auto snap0 = set.replica(0).snapshot();
  auto snap1 = set.replica(1).snapshot();
  EXPECT_EQ(snap1->space().num_docs(), 55u);
  EXPECT_EQ(set.replica(1).consolidations(),
            set.replica(0).consolidations());
  for (const auto& q : corpus.queries) {
    expect_identical(snap0->query(q.text, exact), snap1->query(q.text, exact),
                     "post-replay exact");
    expect_identical(snap0->query(q.text, pruned),
                     snap1->query(q.text, pruned), "post-replay pruned");
  }
  set.shutdown();
}

TEST(Replication, WritesBelowQuorumAreUnavailable) {
  auto corpus = small_corpus(6);
  core::ReplicaSet set(base_index(corpus, 40), replica_opts(3));
  EXPECT_EQ(set.options().quorum(), 2u);  // majority of 3

  ASSERT_TRUE(set.eject(0).ok());
  ASSERT_TRUE(set.add(corpus.docs[40]).ok());  // 2 healthy: still at quorum
  ASSERT_TRUE(set.eject(2).ok());
  EXPECT_EQ(set.healthy_count(), 1u);
  EXPECT_EQ(set.add(corpus.docs[41]).code(), StatusCode::kUnavailable);
  EXPECT_EQ(set.try_add(corpus.docs[41]).code(), StatusCode::kUnavailable);

  // Reads keep working against the surviving replica.
  auto ref = set.pick_reader();
  EXPECT_EQ(ref.replica, 1u);
  ASSERT_NE(ref.snapshot, nullptr);

  // Recovery: readmit one replica, writes resume, and the quorum-era doc
  // reaches the replayed replica too.
  ASSERT_TRUE(set.readmit(0).ok());
  ASSERT_TRUE(set.add(corpus.docs[41]).ok());
  set.flush();
  EXPECT_EQ(set.replica(0).ingested(), 2u);
  set.shutdown();
}

TEST(Replication, EveryReplicaEjectedStillServesStaleReads) {
  auto corpus = small_corpus(7);
  core::ReplicaSet set(base_index(corpus, 40), replica_opts(2));
  ASSERT_TRUE(set.eject(0).ok());
  ASSERT_TRUE(set.eject(1).ok());
  EXPECT_EQ(set.healthy_count(), 0u);
  auto ref = set.pick_reader();
  ASSERT_NE(ref.snapshot, nullptr);  // degraded-but-serving
  EXPECT_EQ(ref.snapshot->space().num_docs(), 40u);
  set.shutdown();
}

TEST(Replication, LogTrimsBehindSlowestReplica) {
  auto corpus = small_corpus(8);
  auto opts = replica_opts(2);
  opts.write_quorum = 1;  // keep writes flowing with one of two ejected
  core::ReplicaSet set(base_index(corpus, 30), opts);
  for (std::size_t d = 30; d < 40; ++d) {
    ASSERT_TRUE(set.add(corpus.docs[d]).ok());
  }
  // Every replica was fed every entry, so nothing is retained.
  EXPECT_EQ(set.next_seq(), 10u);
  EXPECT_EQ(set.log_entries(), 0u);

  // An ejected replica freezes its cursor: the tail it will replay is
  // retained, and grows with the gap.
  ASSERT_TRUE(set.eject(1).ok());
  for (std::size_t d = 40; d < 45; ++d) {
    ASSERT_TRUE(set.add(corpus.docs[d]).ok());
  }
  EXPECT_EQ(set.log_entries(), 5u);
  ASSERT_TRUE(set.readmit(1).ok());
  EXPECT_EQ(set.log_entries(), 0u);  // caught up: tail released
  set.shutdown();
}

TEST(Replication, ConsolidateMarkerHitsEveryHealthyReplica) {
  auto corpus = small_corpus(9);
  auto opts = replica_opts(3);
  opts.concurrent.consolidate_every = 0;  // manual only
  core::ReplicaSet set(base_index(corpus, 30), opts);
  for (std::size_t d = 30; d < 40; ++d) {
    ASSERT_TRUE(set.add(corpus.docs[d]).ok());
  }
  ASSERT_TRUE(set.consolidate().ok());
  for (std::size_t r = 0; r < 3; ++r) {
    EXPECT_EQ(set.replica(r).consolidations(), 1u) << "replica " << r;
    EXPECT_EQ(set.replica(r).snapshot()->unconsolidated(), 0u)
        << "replica " << r;
  }
  set.shutdown();
}

TEST(Replication, AddAfterShutdownIsFailedPrecondition) {
  auto corpus = small_corpus(10);
  core::ReplicaSet set(base_index(corpus, 40), replica_opts(2));
  set.shutdown();
  EXPECT_EQ(set.add(corpus.docs[40]).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(set.try_add(corpus.docs[40]).code(),
            StatusCode::kFailedPrecondition);
}

TEST(Replication, ReplicaInfosReflectStateAndProgress) {
  auto corpus = small_corpus(11);
  core::ReplicaSet set(base_index(corpus, 40), replica_opts(3));
  for (std::size_t d = 40; d < 45; ++d) {
    ASSERT_TRUE(set.add(corpus.docs[d]).ok());
  }
  set.flush();
  ASSERT_TRUE(set.eject(2).ok());
  auto infos = set.replica_infos();
  ASSERT_EQ(infos.size(), 3u);
  for (std::size_t r = 0; r < 3; ++r) {
    EXPECT_EQ(infos[r].replica, r);
    EXPECT_EQ(infos[r].fed, 5u);
    EXPECT_EQ(infos[r].ingested, 5u);
    EXPECT_GE(infos[r].generation, 2u);
  }
  EXPECT_EQ(infos[0].state, core::ReplicaState::kHealthy);
  EXPECT_EQ(infos[2].state, core::ReplicaState::kEjected);
  set.shutdown();
}

TEST(Replication, OptionsValidateRejectsNonsense) {
  core::ReplicaOptions opts;
  opts.replicas = 0;
  EXPECT_EQ(opts.Validate().code(), StatusCode::kInvalidArgument);
  opts.replicas = 2;
  opts.write_quorum = 3;  // cannot exceed R
  EXPECT_EQ(opts.Validate().code(), StatusCode::kInvalidArgument);
  opts.write_quorum = 2;
  opts.eject_after_refusals = 0;
  EXPECT_EQ(opts.Validate().code(), StatusCode::kInvalidArgument);
  opts.eject_after_refusals = 1;
  opts.strike_interval = std::chrono::milliseconds(-1);
  EXPECT_EQ(opts.Validate().code(), StatusCode::kInvalidArgument);
  opts.strike_interval = std::chrono::milliseconds(0);  // 0 = strike per poll
  EXPECT_TRUE(opts.Validate().ok());
  // Quorum resolution: explicit wins, 0 means majority.
  EXPECT_EQ(opts.quorum(), 2u);
  opts.write_quorum = 0;
  EXPECT_EQ(opts.quorum(), 2u);  // majority of 2
  opts.replicas = 5;
  EXPECT_EQ(opts.quorum(), 3u);
}

TEST(Replication, EjectOutOfRangeIsInvalidArgument) {
  auto corpus = small_corpus(12);
  core::ReplicaSet set(base_index(corpus, 40), replica_opts(2));
  EXPECT_EQ(set.eject(2).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(set.readmit(7).code(), StatusCode::kInvalidArgument);
  set.shutdown();
}

}  // namespace
