// Incremental (real-time) indexing tests: fold-now / consolidate-later.

#include <gtest/gtest.h>

#include "lsi/incremental.hpp"
#include "synth/corpus.hpp"

namespace {

using namespace lsi;

synth::SyntheticCorpus small_corpus(std::uint64_t seed) {
  synth::CorpusSpec spec;
  spec.topics = 4;
  spec.concepts_per_topic = 8;
  spec.docs_per_topic = 15;
  spec.queries_per_topic = 2;
  spec.seed = seed;
  return synth::generate_corpus(spec);
}

core::LsiIndex base_index(const synth::SyntheticCorpus& corpus,
                          std::size_t train) {
  text::Collection head(corpus.docs.begin(), corpus.docs.begin() + train);
  core::IndexOptions opts;
  opts.k = 12;
  return core::LsiIndex::try_build(head, opts).value();
}

TEST(Incremental, DocumentsVisibleImmediately) {
  auto corpus = small_corpus(1);
  core::IncrementalIndexer indexer(base_index(corpus, 40));
  const auto& doc = corpus.docs[40];
  indexer.add(doc);
  EXPECT_EQ(indexer.index().space().num_docs(), 41u);
  EXPECT_EQ(indexer.index().doc_labels().back(), doc.label);

  // Query with the document's own text: it must be findable right away.
  auto results = indexer.index().query(doc.body);
  bool found = false;
  for (std::size_t i = 0; i < 3 && i < results.size(); ++i) {
    found = found || results[i].label == doc.label;
  }
  EXPECT_TRUE(found);
}

TEST(Incremental, ConsolidationTriggersOnBudget) {
  auto corpus = small_corpus(2);
  core::IncrementalOptions opts;
  opts.consolidate_every = 5;
  core::IncrementalIndexer indexer(base_index(corpus, 30), opts);
  int consolidated = 0;
  for (std::size_t d = 30; d < 45; ++d) {
    consolidated += indexer.add(corpus.docs[d]);
  }
  EXPECT_EQ(consolidated, 3);
  EXPECT_EQ(indexer.consolidations(), 3u);
  EXPECT_EQ(indexer.pending(), 0u);
  EXPECT_EQ(indexer.index().space().num_docs(), 45u);
}

TEST(Incremental, ConsolidationRestoresOrthogonality) {
  auto corpus = small_corpus(3);
  core::IncrementalOptions opts;
  opts.consolidate_every = 0;  // manual
  core::IncrementalIndexer indexer(base_index(corpus, 30), opts);
  for (std::size_t d = 30; d < 50; ++d) indexer.add(corpus.docs[d]);
  EXPECT_EQ(indexer.pending(), 20u);
  const double loss_before =
      core::orthogonality_loss(indexer.index().space().v);
  EXPECT_GT(loss_before, 1e-8);  // folding corrupted the basis

  indexer.consolidate();
  EXPECT_EQ(indexer.pending(), 0u);
  EXPECT_LT(core::orthogonality_loss(indexer.index().space().v), 1e-9);
  EXPECT_EQ(indexer.index().space().num_docs(), 50u);
}

TEST(Incremental, ExactConsolidationAlsoWorks) {
  auto corpus = small_corpus(4);
  core::IncrementalOptions opts;
  opts.consolidate_every = 8;
  opts.exact_update = true;
  core::IncrementalIndexer indexer(base_index(corpus, 30), opts);
  for (std::size_t d = 30; d < 46; ++d) indexer.add(corpus.docs[d]);
  EXPECT_EQ(indexer.consolidations(), 2u);
  EXPECT_LT(core::orthogonality_loss(indexer.index().space().v), 1e-9);
}

TEST(Incremental, LabelsStayAlignedAcrossConsolidation) {
  auto corpus = small_corpus(5);
  core::IncrementalOptions opts;
  opts.consolidate_every = 4;
  core::IncrementalIndexer indexer(base_index(corpus, 30), opts);
  for (std::size_t d = 30; d < 42; ++d) indexer.add(corpus.docs[d]);
  const auto& labels = indexer.index().doc_labels();
  ASSERT_EQ(labels.size(), 42u);
  for (std::size_t d = 0; d < 42; ++d) {
    EXPECT_EQ(labels[d], corpus.docs[d].label);
  }
  EXPECT_EQ(indexer.index().space().num_docs(), 42u);
}

TEST(Incremental, RetrievalQualitySurvivesStreaming) {
  auto corpus = small_corpus(6);
  core::IncrementalOptions opts;
  opts.consolidate_every = 10;
  core::IncrementalIndexer indexer(base_index(corpus, 30), opts);
  for (std::size_t d = 30; d < corpus.docs.size(); ++d) {
    indexer.add(corpus.docs[d]);
  }
  // Every query's top hit should be topical.
  std::size_t topical = 0;
  for (const auto& q : corpus.queries) {
    auto results = indexer.index().query(q.text);
    if (results.empty()) continue;
    topical += q.relevant.count(results[0].doc) > 0;
  }
  EXPECT_GE(topical * 2, corpus.queries.size());
}

}  // namespace
