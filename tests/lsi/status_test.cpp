// lsi::Status / lsi::Expected semantics and their propagation through the
// canonical entry points: try_build_semantic_space, LsiIndex::try_build,
// IndexOptions::Validate, and the io layer — plus one test keeping the
// deprecated throwing wrappers honest for their final PR.

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "data/med_topics.hpp"
#include "lsi/io.hpp"
#include "lsi/lsi_index.hpp"
#include "lsi/semantic_space.hpp"
#include "lsi/status.hpp"

namespace {

using namespace lsi;

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.to_string(), "ok");
  EXPECT_NO_THROW(s.or_throw());
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  const auto s = Status::InvalidArgument("k must be positive");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "k must be positive");
  EXPECT_EQ(s.to_string(), "invalid-argument: k must be positive");
  EXPECT_THROW(s.or_throw(), std::runtime_error);
}

TEST(Status, ResourceExhaustedNamesItself) {
  const auto s = Status::ResourceExhausted("ingest queue full (capacity 8)");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(s.to_string(),
            "resource-exhausted: ingest queue full (capacity 8)");
}

TEST(Expected, HoldsValueOrStatus) {
  Expected<int> good(7);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 7);
  EXPECT_EQ(good.value_or(-1), 7);

  Expected<int> bad(Status::NotFound("no such thing"));
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(bad.value_or(-1), -1);
  EXPECT_THROW(bad.value(), std::runtime_error);
}

TEST(TryBuildSemanticSpace, EmptyMatrixIsInvalidArgument) {
  const auto result = core::try_build_semantic_space(la::CscMatrix(), 2);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("empty"), std::string::npos);
}

TEST(TryBuildSemanticSpace, ZeroKIsInvalidArgument) {
  core::BuildOptions opts;
  opts.k = 0;
  const auto result =
      core::try_build_semantic_space(data::table3_counts(), opts);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(TryBuildSemanticSpace, OversizedKClampsToRankBound) {
  // k beyond min(m, n) is not an error: the factor count clamps to the
  // rank bound, the documented (and historical) behavior.
  const auto result = core::try_build_semantic_space(data::table3_counts(), 99);
  ASSERT_TRUE(result.ok()) << result.status().to_string();
  EXPECT_EQ(result->k(), 14u);
}

TEST(IndexOptionsValidate, CatchesBadFields) {
  core::IndexOptions opts;
  EXPECT_TRUE(opts.Validate().ok());

  opts.k = 0;
  EXPECT_EQ(opts.Validate().code(), StatusCode::kInvalidArgument);
  opts.k = 2;

  opts.build.lanczos.tol = 0.0;
  EXPECT_EQ(opts.Validate().code(), StatusCode::kInvalidArgument);
  opts.build.lanczos.tol = 1e-10;

  opts.parser.min_document_frequency = 0;
  EXPECT_EQ(opts.Validate().code(), StatusCode::kInvalidArgument);
  opts.parser.min_document_frequency = 1;

  opts.query.min_cosine = 1.5;
  EXPECT_EQ(opts.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(LsiIndexTryBuild, EmptyCollectionIsInvalidArgument) {
  const auto result = core::LsiIndex::try_build(text::Collection{}, {});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(LsiIndexTryBuild, InvalidOptionsAreRejectedBeforeAnyWork) {
  core::IndexOptions opts;
  opts.k = 0;
  const auto result = core::LsiIndex::try_build(data::med_topics(), opts);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(LsiIndexTryBuild, SucceedsOnThePaperExample) {
  core::IndexOptions opts;
  opts.parser.min_document_frequency = 2;
  opts.k = 2;
  const auto result = core::LsiIndex::try_build(data::med_topics(), opts);
  ASSERT_TRUE(result.ok()) << result.status().to_string();
  EXPECT_EQ(result->space().k(), 2u);
}

TEST(Io, TruncatedStreamIsDataLoss) {
  std::istringstream garbage("not an lsi database");
  const auto result = core::try_load_database(garbage);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDataLoss);
}

TEST(Io, MissingFileIsNotFound) {
  const auto result =
      core::try_load_database_file("/nonexistent/dir/lsi.db");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(Io, RoundTripThroughTheStatusApi) {
  core::IndexOptions opts;
  opts.parser.min_document_frequency = 2;
  opts.k = 2;
  const auto index = core::LsiIndex::try_build(data::med_topics(), opts).value();
  core::LsiDatabase db;
  db.space = index.space();
  db.vocabulary = index.vocabulary();
  db.doc_labels = index.doc_labels();
  std::stringstream buffer;
  ASSERT_TRUE(core::try_save_database(buffer, db).ok());
  const auto loaded = core::try_load_database(buffer);
  ASSERT_TRUE(loaded.ok()) << loaded.status().to_string();
  EXPECT_EQ(loaded->vocabulary.size(), db.vocabulary.size());
  EXPECT_EQ(loaded->space.k(), 2u);
}

// The deprecated throwing signatures stay behaviorally identical until their
// removal next PR; the pragma scopes the intentional use.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
TEST(DeprecatedWrappers, StillThrowTheOldWay) {
  EXPECT_THROW(core::build_semantic_space(la::CscMatrix(), 2),
               std::runtime_error);
  std::istringstream garbage("nope");
  EXPECT_THROW(core::load_database(garbage), std::runtime_error);
  auto space = core::build_semantic_space(data::table3_counts(), 2);
  EXPECT_EQ(space.k(), 2u);
}
#pragma GCC diagnostic pop

}  // namespace
