// Sharding unit tests: router policies, option validation, the gather
// merge's deterministic tie-breaking, and the ShardedIndex lifecycle
// (build, ingest, snapshot consistency, per-shard statistics).

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "lsi/lsi.hpp"
#include "util/hash.hpp"

namespace {

using namespace lsi;
using namespace lsi::core;
using core::RoutingPolicy;

// ---------------------------------------------------------------------------
// ShardRouter
// ---------------------------------------------------------------------------

TEST(ShardRouter, RoundRobinCycles) {
  core::ShardRouter router(RoutingPolicy::kRoundRobin, 3);
  std::vector<std::size_t> got;
  for (int i = 0; i < 7; ++i) got.push_back(router.route("d", 100));
  EXPECT_EQ(got, (std::vector<std::size_t>{0, 1, 2, 0, 1, 2, 0}));
  EXPECT_EQ(router.assigned(), (std::vector<std::size_t>{3, 2, 2}));
}

TEST(ShardRouter, SizeBalancedTracksLoad) {
  core::ShardRouter router(RoutingPolicy::kSizeBalanced, 2);
  EXPECT_EQ(router.route("a", 10), 0u);  // both empty: lowest index
  EXPECT_EQ(router.route("b", 1), 1u);   // loads 10 vs 0
  EXPECT_EQ(router.route("c", 1), 1u);   // loads 10 vs 1
  EXPECT_EQ(router.route("d", 1), 1u);   // loads 10 vs 2
  EXPECT_EQ(router.route("e", 1), 1u);   // loads 10 vs 3
  EXPECT_EQ(router.route("f", 9), 1u);   // loads 10 vs 4
  EXPECT_EQ(router.route("g", 1), 0u);   // loads 10 vs 13
  EXPECT_EQ(router.load(), (std::vector<std::size_t>{11, 13}));
}

TEST(ShardRouter, SizeBalancedCyclesOnZeroHints) {
  // Every document counts as at least one load unit, so zero size hints
  // degrade to round-robin-like spreading instead of piling onto shard 0.
  core::ShardRouter router(RoutingPolicy::kSizeBalanced, 3);
  for (int i = 0; i < 9; ++i) router.route("d", 0);
  EXPECT_EQ(router.assigned(), (std::vector<std::size_t>{3, 3, 3}));
}

TEST(ShardRouter, HashLabelIsStableAndLabelKeyed) {
  core::ShardRouter a(RoutingPolicy::kHashLabel, 4);
  core::ShardRouter b(RoutingPolicy::kHashLabel, 4);
  for (const char* label : {"doc-0", "doc-1", "M7", "", "a long label"}) {
    const std::size_t want = util::fnv1a64(label) % 4;
    EXPECT_EQ(a.route(label, 1), want) << label;
    EXPECT_EQ(b.route(label, 999), want) << label;  // size hint ignored
    EXPECT_EQ(a.route(label, 1), want) << label;    // replays identically
  }
}

TEST(Fnv1a64, FixedForAllTime) {
  // Canonical FNV-1a vectors: changing the hash would silently re-partition
  // every hash-routed collection, so these values must never change.
  EXPECT_EQ(util::fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(util::fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(util::fnv1a64("foobar"), 0x85944171f73967e8ULL);
}

TEST(RoutingPolicyNames, RoundTripAndShortForms) {
  for (RoutingPolicy p : {RoutingPolicy::kRoundRobin,
                          RoutingPolicy::kSizeBalanced,
                          RoutingPolicy::kHashLabel}) {
    const auto parsed =
        core::parse_routing_policy(core::routing_policy_name(p));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, p);
  }
  EXPECT_EQ(*core::parse_routing_policy("rr"), RoutingPolicy::kRoundRobin);
  EXPECT_EQ(*core::parse_routing_policy("size"),
            RoutingPolicy::kSizeBalanced);
  EXPECT_EQ(*core::parse_routing_policy("hash"), RoutingPolicy::kHashLabel);
  const auto bad = core::parse_routing_policy("random");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// ShardingOptions
// ---------------------------------------------------------------------------

TEST(ShardingOptions, ValidateRejectsBadConfigs) {
  core::ShardingOptions opts;
  opts.num_shards = 0;
  EXPECT_EQ(opts.Validate().code(), StatusCode::kInvalidArgument);

  opts = {};
  opts.num_shards = 8;
  opts.index.k = 3;  // cannot split 3 factors across 8 shards
  EXPECT_EQ(opts.Validate().code(), StatusCode::kInvalidArgument);

  opts.split_k_budget = false;  // every shard gets k outright: now fine
  EXPECT_TRUE(opts.Validate().ok());
}

TEST(ShardingOptions, ShardKSplitsTheBudget) {
  core::ShardingOptions opts;
  opts.num_shards = 4;
  opts.index.k = 10;  // 10 = 3 + 3 + 2 + 2
  EXPECT_EQ(opts.shard_k(0), 3);
  EXPECT_EQ(opts.shard_k(1), 3);
  EXPECT_EQ(opts.shard_k(2), 2);
  EXPECT_EQ(opts.shard_k(3), 2);

  index_t total = 0;
  for (std::size_t s = 0; s < opts.num_shards; ++s) total += opts.shard_k(s);
  EXPECT_EQ(total, opts.index.k);  // the equal-total-k-budget contract

  opts.min_shard_k = 4;  // floor wins over the split
  EXPECT_EQ(opts.shard_k(2), 4);

  opts.split_k_budget = false;  // full budget per shard
  EXPECT_EQ(opts.shard_k(0), 10);
  EXPECT_EQ(opts.shard_k(3), 10);
}

// ---------------------------------------------------------------------------
// Gather merge determinism (the shared lsi/ranking.hpp order)
// ---------------------------------------------------------------------------

std::vector<core::ScoredDoc> docs(
    std::initializer_list<std::pair<index_t, double>> list) {
  std::vector<core::ScoredDoc> out;
  for (const auto& [d, c] : list) out.push_back({d, c});
  return out;
}

TEST(MergeRankings, EqualScoresOrderByGlobalIdAcrossAnySplit) {
  // Six documents, all tied at cosine 0.5 except two distinct leaders.
  // However the tied documents are distributed across shards, the merged
  // order must be: leaders by score, then the tie block by ascending
  // global id.
  const std::vector<core::ScoredDoc> want =
      docs({{4, 0.9}, {1, 0.7}, {0, 0.5}, {2, 0.5}, {3, 0.5}, {5, 0.5}});

  // N = 1: everything in one list (already canonical).
  auto one = core::merge_rankings<core::ScoredDoc>({want});
  // N = 2: ties split across two shards, interleaved ids.
  auto two = core::merge_rankings<core::ScoredDoc>(
      {docs({{1, 0.7}, {0, 0.5}, {3, 0.5}}),
       docs({{4, 0.9}, {2, 0.5}, {5, 0.5}})});
  // N = 4: one tied doc per shard, reversed shard order.
  auto four = core::merge_rankings<core::ScoredDoc>(
      {docs({{5, 0.5}}), docs({{4, 0.9}, {3, 0.5}}),
       docs({{1, 0.7}, {2, 0.5}}), docs({{0, 0.5}})});

  for (const auto* got : {&one, &two, &four}) {
    ASSERT_EQ(got->size(), want.size());
    for (std::size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ((*got)[i].doc, want[i].doc) << "rank " << i;
      EXPECT_EQ((*got)[i].cosine, want[i].cosine) << "rank " << i;
    }
  }
}

TEST(MergeRankings, TopZTruncatesAfterTheGlobalSort) {
  auto merged = core::merge_rankings<core::ScoredDoc>(
      {docs({{0, 0.1}, {1, 0.05}}), docs({{2, 0.8}, {3, 0.2}})}, 2);
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged[0].doc, 2);
  EXPECT_EQ(merged[1].doc, 3);
}

TEST(MergeRankings, SingleListIsOrderPreserving) {
  // The N = 1 bit-parity guarantee: merging one canonical list adds no
  // reordering, even among exact ties.
  const auto in = docs({{2, 0.5}, {7, 0.5}, {9, 0.5}});
  const auto out = core::merge_rankings<core::ScoredDoc>({in});
  ASSERT_EQ(out.size(), in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    EXPECT_EQ(out[i].doc, in[i].doc);
  }
}

// ---------------------------------------------------------------------------
// ShardedIndex lifecycle
// ---------------------------------------------------------------------------

text::Collection tiny_collection() {
  return {
      {"D0", "graph partitioning algorithms for sparse matrix ordering"},
      {"D1", "singular value decomposition of large sparse matrix"},
      {"D2", "query projection in latent semantic indexing"},
      {"D3", "updating the singular value decomposition incrementally"},
      {"D4", "cosine similarity ranking for document retrieval"},
      {"D5", "latent semantic indexing for document retrieval"},
      {"D6", "sparse matrix vector multiplication kernels"},
      {"D7", "relevance feedback improves query ranking"},
  };
}

core::ShardingOptions tiny_options(std::size_t shards) {
  core::ShardingOptions opts;
  opts.num_shards = shards;
  opts.index.k = 4;
  opts.min_shard_k = 2;
  return opts;
}

TEST(ShardedIndex, TryBuildRejectsBadInputs) {
  const auto docs = tiny_collection();

  auto empty = core::ShardedIndex::try_build({}, tiny_options(2));
  ASSERT_FALSE(empty.ok());
  EXPECT_EQ(empty.status().code(), StatusCode::kInvalidArgument);

  auto too_many = core::ShardedIndex::try_build(
      {docs[0], docs[1]}, tiny_options(3));
  ASSERT_FALSE(too_many.ok());
  EXPECT_EQ(too_many.status().code(), StatusCode::kInvalidArgument);

  // Hash routing can starve a shard: two copies of one label always land
  // together, leaving the other shard empty — a clear error, not a crash.
  auto opts = tiny_options(2);
  opts.routing = RoutingPolicy::kHashLabel;
  text::Collection same_label = {{"X", "alpha beta"}, {"X", "gamma delta"}};
  auto starved = core::ShardedIndex::try_build(same_label, opts);
  ASSERT_FALSE(starved.ok());
  EXPECT_EQ(starved.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(starved.status().message().find("no documents"),
            std::string::npos);
}

TEST(ShardedIndex, BuildPartitionsAndReportsShardInfos) {
  const auto docs = tiny_collection();
  auto built = core::ShardedIndex::try_build(docs, tiny_options(4));
  ASSERT_TRUE(built.ok()) << built.status().to_string();
  auto& index = *built;

  EXPECT_EQ(index.num_shards(), 4u);
  const auto infos = index.shard_infos();
  ASSERT_EQ(infos.size(), 4u);
  std::size_t total_docs = 0;
  for (std::size_t s = 0; s < infos.size(); ++s) {
    EXPECT_EQ(infos[s].shard, s);
    EXPECT_EQ(infos[s].docs, 2u);  // 8 docs round-robined over 4 shards
    EXPECT_EQ(infos[s].k, index.options().shard_k(s));
    EXPECT_EQ(infos[s].generation, 1u);  // base publish
    EXPECT_EQ(infos[s].queued, 0u);
    total_docs += infos[s].docs;
  }
  EXPECT_EQ(total_docs, docs.size());

  const auto snap = index.snapshot();
  EXPECT_EQ(snap.num_shards(), 4u);
  EXPECT_EQ(snap.num_docs(), static_cast<index_t>(docs.size()));
  EXPECT_EQ(snap.generations(), (std::vector<std::uint64_t>{1, 1, 1, 1}));
}

TEST(ShardedIndex, GlobalIdsAreCollectionPositions) {
  const auto docs = tiny_collection();
  auto index = core::ShardedIndex::try_build(docs, tiny_options(2)).value();
  const auto snap = index.snapshot();

  // Every global id in [0, n) appears exactly once across the shard maps,
  // and maps back to the document the shard actually holds.
  std::set<index_t> seen;
  for (std::size_t s = 0; s < snap.num_shards(); ++s) {
    const auto& view = snap.shard(s);
    const auto& labels = view.snapshot->doc_labels();
    ASSERT_EQ(view.global_ids->size(), labels.size());
    for (std::size_t j = 0; j < labels.size(); ++j) {
      const index_t gid = (*view.global_ids)[j];
      EXPECT_TRUE(seen.insert(gid).second) << "duplicate global id " << gid;
      ASSERT_LT(static_cast<std::size_t>(gid), docs.size());
      EXPECT_EQ(labels[j], docs[gid].label);
    }
  }
  EXPECT_EQ(seen.size(), docs.size());
}

TEST(ShardedIndex, QueryResolvesGlobalIdsAndLabels) {
  const auto docs = tiny_collection();
  auto index = core::ShardedIndex::try_build(docs, tiny_options(2)).value();
  const auto snap = index.snapshot();

  core::SearchOptions opts;
  opts.z = 3;
  const auto hits = snap.query("latent semantic indexing retrieval", opts);
  ASSERT_FALSE(hits.empty());
  ASSERT_LE(hits.size(), 3u);
  for (const auto& hit : hits) {
    ASSERT_LT(static_cast<std::size_t>(hit.doc), docs.size());
    EXPECT_EQ(hit.label, docs[hit.doc].label);  // global id ↔ label agree
  }
  // Both of the collection's LSI documents should surface.
  std::set<std::string> top_labels;
  for (const auto& hit : hits) top_labels.insert(hit.label);
  EXPECT_TRUE(top_labels.count("D2") || top_labels.count("D5"));
}

TEST(ShardedIndex, RankBatchMatchesSingleQueries) {
  const auto docs = tiny_collection();
  auto index = core::ShardedIndex::try_build(docs, tiny_options(2)).value();
  const auto snap = index.snapshot();

  const std::vector<std::string> texts = {
      "sparse matrix kernels", "document retrieval ranking",
      "singular value decomposition"};
  core::SearchOptions opts;
  opts.z = 5;
  core::QueryStats stats;
  const auto batched = snap.rank_batch(texts, opts, &stats);
  ASSERT_EQ(batched.size(), texts.size());
  EXPECT_EQ(stats.batch_size, static_cast<index_t>(texts.size()));
  EXPECT_GT(stats.docs_scored, 0);
  for (std::size_t b = 0; b < texts.size(); ++b) {
    const auto single = snap.retrieve(texts[b], opts);
    ASSERT_EQ(batched[b].size(), single.size());
    for (std::size_t i = 0; i < single.size(); ++i) {
      EXPECT_EQ(batched[b][i].doc, single[i].doc);
      EXPECT_EQ(batched[b][i].cosine, single[i].cosine);  // exact bits
    }
  }

  // Empty batch: clean empty result, no work.
  EXPECT_TRUE(snap.rank_batch({}, opts).empty());
}

TEST(ShardedIndex, IngestRoutesAndAssignsFreshGlobalIds) {
  const auto docs = tiny_collection();
  auto index = core::ShardedIndex::try_build(docs, tiny_options(2)).value();

  ASSERT_TRUE(index.add({"D8", "graph ordering via nested dissection"}).ok());
  ASSERT_TRUE(index.add({"D9", "semantic space projection methods"}).ok());
  index.flush();
  EXPECT_EQ(index.ingested(), 2u);

  const auto snap = index.snapshot();
  EXPECT_EQ(snap.num_docs(), static_cast<index_t>(docs.size() + 2));

  // The new documents got the next global ids (8 and 9) in arrival order.
  std::set<index_t> gids;
  for (std::size_t s = 0; s < snap.num_shards(); ++s) {
    const auto& view = snap.shard(s);
    const auto& labels = view.snapshot->doc_labels();
    for (std::size_t j = 0; j < labels.size(); ++j) {
      const index_t gid = (*view.global_ids)[j];
      EXPECT_TRUE(gids.insert(gid).second);
      if (labels[j] == "D8") EXPECT_EQ(gid, 8);
      if (labels[j] == "D9") EXPECT_EQ(gid, 9);
    }
  }
  EXPECT_EQ(gids.size(), docs.size() + 2);

  index.shutdown();
  EXPECT_EQ(index.add({"D10", "too late"}).code(),
            StatusCode::kFailedPrecondition);
}

TEST(ShardedIndex, ConsolidateReachesEveryShard) {
  const auto docs = tiny_collection();
  auto opts = tiny_options(2);
  opts.concurrent.consolidate_every = 0;  // only explicit consolidation
  auto index = core::ShardedIndex::try_build(docs, opts).value();

  ASSERT_TRUE(index.add({"D8", "latent structure of sparse queries"}).ok());
  ASSERT_TRUE(index.add({"D9", "ranking documents by cosine"}).ok());
  index.flush();
  ASSERT_TRUE(index.consolidate().ok());

  for (const auto& info : index.shard_infos()) {
    EXPECT_EQ(info.unconsolidated, 0u) << "shard " << info.shard;
    EXPECT_GE(info.consolidations, 1u) << "shard " << info.shard;
  }
}

TEST(ShardedIndex, SnapshotIsolatesReadersFromLaterIngest) {
  const auto docs = tiny_collection();
  auto index = core::ShardedIndex::try_build(docs, tiny_options(2)).value();

  const auto before = index.snapshot();
  const auto gens_before = before.generations();
  ASSERT_TRUE(index.add({"D8", "new material arriving mid query"}).ok());
  index.flush();

  // The pinned view never changes: same generations, same doc count.
  EXPECT_EQ(before.generations(), gens_before);
  EXPECT_EQ(before.num_docs(), static_cast<index_t>(docs.size()));
  // A fresh snapshot sees the new document.
  EXPECT_EQ(index.snapshot().num_docs(),
            static_cast<index_t>(docs.size() + 1));
}

}  // namespace
