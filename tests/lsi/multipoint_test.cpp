// Multiple-points-of-interest retrieval tests (Section 5.4 extension).

#include <gtest/gtest.h>

#include "data/med_topics.hpp"
#include "lsi/retrieval.hpp"
#include "lsi/semantic_space.hpp"

namespace {

using namespace lsi;
using core::MultiPointCombiner;
using core::QueryOptions;

core::SemanticSpace paper_space() {
  auto space = core::try_build_semantic_space(data::table3_counts(), 4).value();
  return space;
}

la::Vector project_terms(const core::SemanticSpace& space,
                         std::initializer_list<int> rows) {
  la::Vector raw(18, 0.0);
  for (int r : rows) raw[r] = 1.0;
  return core::project_query(space, raw);
}

TEST(MultiPoint, SinglePointMatchesPlainRanking) {
  auto space = paper_space();
  auto q = project_terms(space, {0, 1, 3});  // the paper's query
  auto plain = core::rank_documents(space, q);
  auto multi = core::rank_documents_multipoint(space, {q});
  ASSERT_EQ(plain.size(), multi.size());
  for (std::size_t i = 0; i < plain.size(); ++i) {
    EXPECT_EQ(plain[i].doc, multi[i].doc);
    EXPECT_NEAR(plain[i].cosine, multi[i].cosine, 1e-12);
  }
}

TEST(MultiPoint, MaxCombinerCoversBothInterests) {
  // Two disjoint interests: hormone production (oestrogen=11, depressed=6)
  // and fasting (fast=9, rats=14). A max-combined multipoint query must
  // rank both clusters' top documents above averaging's compromises.
  auto space = paper_space();
  auto hormone = project_terms(space, {11, 6});
  auto fasting = project_terms(space, {9, 14});

  QueryOptions opts;
  opts.top_z = 6;
  auto multi = core::rank_documents_multipoint(space, {hormone, fasting},
                                               opts, MultiPointCombiner::kMax);
  std::set<core::index_t> top;
  for (const auto& sd : multi) top.insert(sd.doc);
  // M3/M4 (hormone) and M13/M14 (fasting) must all surface.
  EXPECT_TRUE(top.count(2) || top.count(3));
  EXPECT_TRUE(top.count(12) || top.count(13));

  // Each document's combined score is the max of its per-point scores.
  auto s1 = core::rank_documents(space, hormone);
  auto s2 = core::rank_documents(space, fasting);
  std::vector<double> best(14, -2.0);
  for (const auto& sd : s1) best[sd.doc] = std::max(best[sd.doc], sd.cosine);
  for (const auto& sd : s2) best[sd.doc] = std::max(best[sd.doc], sd.cosine);
  for (const auto& sd : multi) {
    EXPECT_NEAR(sd.cosine, best[sd.doc], 1e-12);
  }
}

TEST(MultiPoint, SumCombinerAverages) {
  auto space = paper_space();
  auto p1 = project_terms(space, {11});
  auto p2 = project_terms(space, {9});
  auto multi = core::rank_documents_multipoint(space, {p1, p2}, {},
                                               MultiPointCombiner::kSum);
  auto s1 = core::rank_documents(space, p1);
  auto s2 = core::rank_documents(space, p2);
  std::vector<double> mean(14, 0.0);
  for (const auto& sd : s1) mean[sd.doc] += sd.cosine / 2.0;
  for (const auto& sd : s2) mean[sd.doc] += sd.cosine / 2.0;
  for (const auto& sd : multi) {
    EXPECT_NEAR(sd.cosine, mean[sd.doc], 1e-12);
  }
}

TEST(MultiPoint, ThresholdAppliesToCombinedScore) {
  auto space = paper_space();
  auto p1 = project_terms(space, {11});
  auto p2 = project_terms(space, {9});
  QueryOptions opts;
  opts.min_cosine = 0.7;
  auto multi = core::rank_documents_multipoint(space, {p1, p2}, opts,
                                               MultiPointCombiner::kMax);
  for (const auto& sd : multi) EXPECT_GE(sd.cosine, 0.7);
}

TEST(MultiPoint, EmptyPointsYieldEmpty) {
  auto space = paper_space();
  EXPECT_TRUE(core::rank_documents_multipoint(space, {}).empty());
}

}  // namespace
