// Exact (residual-carrying) SVD-updating tests: unlike the Section 4.2
// projection method, these must match recomputing the truncated SVD of the
// bordered matrix for ARBITRARY new data, even far outside the retained
// subspaces.

#include <gtest/gtest.h>

#include "lsi/update.hpp"
#include "synth/sparse_random.hpp"
#include "util/rng.hpp"
#include "weighting/weighting.hpp"

namespace {

using namespace lsi;
using core::SemanticSpace;
using core::index_t;

void expect_spaces_equivalent(const SemanticSpace& a, const SemanticSpace& b,
                              double tol) {
  ASSERT_EQ(a.k(), b.k());
  for (index_t i = 0; i < a.k(); ++i) {
    EXPECT_NEAR(a.sigma[i], b.sigma[i], tol) << "sigma " << i;
  }
  EXPECT_LT(la::max_abs_diff(a.reconstruct(), b.reconstruct()), tol * 10);
}

/// Recompute reference: truncated SVD of (A_k | D).
SemanticSpace recompute_docs(const SemanticSpace& base,
                             const la::CscMatrix& d, index_t k) {
  auto bordered = base.reconstruct();
  bordered.append_cols(d.to_dense());
  return core::try_build_semantic_space(la::CscMatrix::from_dense(bordered), k).value();
}

TEST(ExactUpdateDocuments, MatchesRecomputeOnTruncatedSpace) {
  auto a = synth::random_sparse_matrix(30, 20, 0.25, 1);
  auto d = synth::random_sparse_matrix(30, 5, 0.25, 2);
  const index_t k = 6;
  auto space = core::try_build_semantic_space(a, k).value();
  auto reference = recompute_docs(space, d, k);
  core::update_documents_exact(space, d);
  expect_spaces_equivalent(space, reference, 1e-9);
}

TEST(ExactUpdateDocuments, HandlesOutOfSubspaceDocuments) {
  // D hits term rows that are zero in A: entirely outside span(U_k). The
  // projection method would erase it; the exact method must not.
  la::CooBuilder ab(20, 10);
  for (index_t i = 0; i < 10; ++i) ab.add(i, i, 2.0 + i);
  auto a = ab.to_csc();  // only rows 0..9 used
  la::CooBuilder db(20, 2);
  db.add(15, 0, 30.0);  // rows 15/16 are new territory; values dominate so
  db.add(16, 1, 40.0);  // the new directions survive the rank-k truncation
  auto d = db.to_csc();

  const index_t k = 10;
  auto approx = core::try_build_semantic_space(a, k).value();
  auto exact = approx;
  core::update_documents(approx, d);
  core::update_documents_exact(exact, d);

  // Reconstruction of the new documents: exact must reproduce them.
  auto exact_recon = exact.reconstruct();
  EXPECT_NEAR(exact_recon(15, 10), 30.0, 1e-8);
  EXPECT_NEAR(exact_recon(16, 11), 40.0, 1e-8);
  // The projection method cannot represent them at all.
  auto approx_recon = approx.reconstruct();
  EXPECT_NEAR(approx_recon(15, 10), 0.0, 1e-9);
}

TEST(ExactUpdateDocuments, KeepsOrthogonality) {
  auto a = synth::random_sparse_matrix(25, 18, 0.3, 3);
  auto space = core::try_build_semantic_space(a, 5).value();
  core::update_documents_exact(space,
                               synth::random_sparse_matrix(25, 4, 0.3, 4));
  EXPECT_LT(core::orthogonality_loss(space.u), 1e-9);
  EXPECT_LT(core::orthogonality_loss(space.v), 1e-9);
  EXPECT_EQ(space.num_docs(), 22u);
}

TEST(ExactUpdateDocuments, EmptyBatchIsNoop) {
  auto a = synth::random_sparse_matrix(10, 8, 0.4, 5);
  auto space = core::try_build_semantic_space(a, 3).value();
  const auto sigma = space.sigma;
  core::update_documents_exact(space, la::CscMatrix(10, 0, {0}, {}, {}));
  EXPECT_EQ(space.sigma, sigma);
}

TEST(ExactUpdateTerms, MatchesRecomputeOnTruncatedSpace) {
  auto a = synth::random_sparse_matrix(22, 16, 0.3, 6);
  auto t = synth::random_sparse_matrix(4, 16, 0.3, 7);
  const index_t k = 5;
  auto space = core::try_build_semantic_space(a, k).value();

  auto bordered = space.reconstruct();
  bordered.append_rows(t.to_dense());
  auto reference =
      core::try_build_semantic_space(la::CscMatrix::from_dense(bordered), k).value();

  core::update_terms_exact(space, t);
  expect_spaces_equivalent(space, reference, 1e-9);
  EXPECT_EQ(space.num_terms(), 26u);
  EXPECT_LT(core::orthogonality_loss(space.u), 1e-9);
}

TEST(ExactUpdateTerms, BeatsProjectionOnNovelStructure) {
  // New terms concentrated on documents the truncated space represents
  // poorly: exact must reconstruct (A_k ; T) strictly better.
  auto a = synth::random_sparse_matrix(18, 14, 0.3, 8);
  auto t = synth::random_sparse_matrix(5, 14, 0.5, 9);
  const index_t k = 4;
  auto approx = core::try_build_semantic_space(a, k).value();
  auto exact = approx;
  auto bordered = approx.reconstruct();
  bordered.append_rows(t.to_dense());

  core::update_terms(approx, t);
  core::update_terms_exact(exact, t);

  auto err = [&](const SemanticSpace& s) {
    auto diff = bordered;
    diff.add_scaled(s.reconstruct(), -1.0);
    return diff.frobenius_norm();
  };
  EXPECT_LE(err(exact), err(approx) + 1e-12);
}

TEST(ExactUpdateWeights, MatchesRecomputeOnTruncatedSpace) {
  auto a = synth::random_sparse_matrix(15, 12, 0.4, 10);
  const index_t k = 5;
  auto space = core::try_build_semantic_space(a, k).value();

  // Arbitrary rank-2 perturbation (not aligned to the subspaces).
  lsi::util::Rng rng(11);
  la::DenseMatrix y(15, 2), z(12, 2);
  for (index_t c = 0; c < 2; ++c) {
    for (index_t i = 0; i < 15; ++i) y(i, c) = rng.normal();
    for (index_t i = 0; i < 12; ++i) z(i, c) = rng.normal();
  }

  auto w = space.reconstruct();
  w.add_scaled(la::multiply_a_bt(y, z), 1.0);
  auto reference =
      core::try_build_semantic_space(la::CscMatrix::from_dense(w), k).value();

  core::update_weights_exact(space, y, z);
  expect_spaces_equivalent(space, reference, 1e-8);
}

TEST(ExactUpdateWeights, AgreesWithProjectionWhenAligned) {
  // Y/Z inside the retained subspaces: both methods must coincide.
  auto a = synth::random_sparse_matrix(12, 12, 0.6, 12);
  auto space = core::try_build_semantic_space(a, 12).value();
  lsi::util::Rng rng(13);
  la::DenseMatrix y(12, 1), z(12, 1);
  for (index_t i = 0; i < 12; ++i) {
    y(i, 0) = rng.normal();
    z(i, 0) = rng.normal();
  }
  auto s1 = space;
  auto s2 = space;
  core::update_weights(s1, y, z);
  core::update_weights_exact(s2, y, z);
  expect_spaces_equivalent(s1, s2, 1e-8);
}

TEST(ExactUpdate, ChainedMatchesFullRecompute) {
  auto a = synth::random_sparse_matrix(16, 12, 0.35, 14);
  auto d = synth::random_sparse_matrix(16, 3, 0.35, 15);
  const index_t k = 5;
  auto space = core::try_build_semantic_space(a, k).value();

  auto after_docs = space.reconstruct();
  after_docs.append_cols(d.to_dense());
  auto ref1 =
      core::try_build_semantic_space(la::CscMatrix::from_dense(after_docs), k).value();

  core::update_documents_exact(space, d);
  expect_spaces_equivalent(space, ref1, 1e-9);

  auto t = synth::random_sparse_matrix(2, 15, 0.4, 16);
  auto after_terms = space.reconstruct();
  after_terms.append_rows(t.to_dense());
  auto ref2 =
      core::try_build_semantic_space(la::CscMatrix::from_dense(after_terms), k).value();
  core::update_terms_exact(space, t);
  expect_spaces_equivalent(space, ref2, 1e-9);
}

}  // namespace
