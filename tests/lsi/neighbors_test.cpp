// Cluster-pruned near-neighbor search tests (the Section 5.6 extension).

#include <gtest/gtest.h>

#include <set>

#include "lsi/neighbors.hpp"
#include "lsi/retrieval.hpp"
#include "synth/sparse_random.hpp"

namespace {

using namespace lsi;
using core::index_t;

core::SemanticSpace make_space(index_t m, index_t n, index_t k,
                               std::uint64_t seed) {
  return core::try_build_semantic_space(
      synth::random_sparse_matrix(m, n, 0.05, seed), k).value();
}

/// Sigma-scaled query coordinates for the kColumnSpace similarity.
la::Vector scaled_query(const core::SemanticSpace& space,
                        const la::Vector& raw) {
  la::Vector q = core::project_query(space, raw);
  for (index_t i = 0; i < q.size(); ++i) q[i] *= space.sigma[i];
  return q;
}

TEST(NeighborIndex, BuildsExpectedClusterCount) {
  auto space = make_space(200, 144, 8, 1);
  core::DocNeighborIndex index(space);
  EXPECT_EQ(index.num_clusters(), 12u);  // sqrt(144)
  EXPECT_EQ(index.num_docs(), 144u);

  core::NeighborIndexOptions opts;
  opts.clusters = 5;
  core::DocNeighborIndex index5(space, opts);
  EXPECT_EQ(index5.num_clusters(), 5u);
}

TEST(NeighborIndex, FullProbeEqualsExactSearch) {
  auto space = make_space(150, 100, 6, 2);
  core::DocNeighborIndex index(space);

  la::Vector raw(150, 0.0);
  raw[3] = 1.0;
  raw[17] = 1.0;
  const la::Vector q = scaled_query(space, raw);

  auto approx = index.query(q, 10, index.num_clusters());
  auto exact = core::rank_documents(space, core::project_query(space, raw),
                                    {core::SimilarityMode::kColumnSpace,
                                     -1.0, 10});
  ASSERT_EQ(approx.size(), exact.size());
  for (std::size_t i = 0; i < approx.size(); ++i) {
    EXPECT_EQ(approx[i].doc, exact[i].doc) << "rank " << i;
    EXPECT_NEAR(approx[i].cosine, exact[i].cosine, 1e-10);
  }
}

TEST(NeighborIndex, FewProbesRecoverMostTrueNeighbors) {
  auto space = make_space(400, 360, 10, 3);
  core::NeighborIndexOptions opts;
  opts.clusters = 18;
  core::DocNeighborIndex index(space, opts);

  double total_recall = 0.0;
  const int trials = 20;
  for (int t = 0; t < trials; ++t) {
    la::Vector raw(400, 0.0);
    raw[(t * 13) % 400] = 1.0;
    raw[(t * 29 + 7) % 400] = 1.0;
    const la::Vector q = scaled_query(space, raw);

    std::set<index_t> truth;
    for (const auto& sd :
         index.query(q, 10, index.num_clusters())) {  // exhaustive
      truth.insert(sd.doc);
    }
    std::size_t hits = 0;
    for (const auto& sd : index.query(q, 10, 4)) hits += truth.count(sd.doc);
    total_recall += static_cast<double>(hits) / 10.0;
  }
  EXPECT_GT(total_recall / trials, 0.6);
}

TEST(NeighborIndex, StatsCountScoredDocuments) {
  auto space = make_space(120, 90, 5, 4);
  core::NeighborIndexOptions opts;
  opts.clusters = 9;
  core::DocNeighborIndex index(space, opts);
  la::Vector q(5, 0.5);

  core::NeighborQueryStats stats;
  (void)index.query(q, 5, 2, &stats);
  EXPECT_EQ(stats.clusters_probed, 2u);
  EXPECT_LT(stats.documents_scored, 90u);
  EXPECT_GT(stats.documents_scored, 0u);

  (void)index.query(q, 5, 9, &stats);
  EXPECT_EQ(stats.documents_scored, 90u);  // all clusters -> all docs
}

TEST(NeighborIndex, ProbesClampedToValidRange) {
  auto space = make_space(60, 40, 4, 5);
  core::NeighborIndexOptions opts;
  opts.clusters = 4;
  core::DocNeighborIndex index(space, opts);
  la::Vector q(4, 1.0);
  EXPECT_FALSE(index.query(q, 3, 0).empty());    // clamped up to 1
  EXPECT_FALSE(index.query(q, 3, 100).empty());  // clamped down to 4
}

TEST(NeighborIndex, DeterministicForSeed) {
  auto space = make_space(100, 80, 5, 6);
  core::DocNeighborIndex a(space), b(space);
  la::Vector q(5, 0.3);
  auto ra = a.query(q, 8, 2);
  auto rb = b.query(q, 8, 2);
  ASSERT_EQ(ra.size(), rb.size());
  for (std::size_t i = 0; i < ra.size(); ++i) {
    EXPECT_EQ(ra[i].doc, rb[i].doc);
  }
}

}  // namespace
