// Unit tests for the gather subsystem's pure pieces (docs/GATHER.md):
// fusion policy math, near-duplicate collapse, facet extraction/merging, and
// the cross-shard term-statistics exchange. The end-to-end properties (the
// sharded read path, determinism across runs/replicas) live in
// gather_determinism_test.cpp; these pin the component contracts the gather
// composes — including the exchange-vs-monolithic weight agreement that the
// whole score-comparability story rests on.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "lsi/gather/dedup.hpp"
#include "lsi/gather/facets.hpp"
#include "lsi/gather/fusion.hpp"
#include "lsi/gather/term_stats.hpp"
#include "lsi/ranking.hpp"
#include "text/parser.hpp"
#include "weighting/weighting.hpp"

namespace {

using namespace lsi;
using namespace lsi::gather;

// ---------------------------------------------------------------------------
// Fusion policies
// ---------------------------------------------------------------------------

TEST(GatherFusion, ParsesEveryPolicyNameAndRejectsGarbage) {
  MergePolicy p;
  EXPECT_TRUE(parse_merge_policy("cosine", p));
  EXPECT_EQ(p, MergePolicy::kRawCosine);
  EXPECT_TRUE(parse_merge_policy("raw", p));
  EXPECT_EQ(p, MergePolicy::kRawCosine);
  EXPECT_TRUE(parse_merge_policy("zscore", p));
  EXPECT_EQ(p, MergePolicy::kZScore);
  EXPECT_TRUE(parse_merge_policy("znorm", p));
  EXPECT_EQ(p, MergePolicy::kZScore);
  EXPECT_TRUE(parse_merge_policy("rrf", p));
  EXPECT_EQ(p, MergePolicy::kRRF);
  EXPECT_FALSE(parse_merge_policy("borda", p));
  EXPECT_FALSE(parse_merge_policy("", p));

  EXPECT_EQ(merge_policy_name(MergePolicy::kRawCosine), "cosine");
  EXPECT_EQ(merge_policy_name(MergePolicy::kZScore), "zscore");
  EXPECT_EQ(merge_policy_name(MergePolicy::kRRF), "rrf");
}

TEST(GatherFusion, RawCosineMatchesMergeRankingsExactly) {
  // The default policy must order (and score) exactly like the pre-gather
  // lsi/ranking.hpp merge — the bit-parity contract every existing suite
  // leans on. Includes a cross-shard tie (docs 7 and 2 at 0.5).
  std::vector<ShardList> shards(2);
  shards[0].docs = {4, 7, 9};
  shards[0].cosines = {0.9, 0.5, 0.1};
  shards[1].docs = {2, 11};
  shards[1].cosines = {0.5, 0.3};

  struct Doc {
    la::index_t doc;
    double cosine;
  };
  std::vector<std::vector<Doc>> lists(2);
  for (std::size_t s = 0; s < 2; ++s) {
    for (std::size_t i = 0; i < shards[s].docs.size(); ++i) {
      lists[s].push_back({shards[s].docs[i], shards[s].cosines[i]});
    }
  }
  const auto want = core::merge_rankings(lists);

  const auto fused = fuse(shards, FusionOptions{});
  ASSERT_EQ(fused.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(fused[i].doc, want[i].doc) << "rank " << i;
    EXPECT_EQ(fused[i].score, want[i].cosine) << "rank " << i;  // exact bits
    EXPECT_EQ(fused[i].cosine, want[i].cosine) << "rank " << i;
  }
  // The cross-shard tie resolves by global id: 2 before 7.
  EXPECT_EQ(fused[1].doc, 2u);
  EXPECT_EQ(fused[2].doc, 7u);
}

TEST(GatherFusion, ZScoreStandardizesEachShardIndependently) {
  std::vector<ShardList> shards(2);
  // Shard 0: cosines {0.8, 0.4} -> mean 0.6, population sigma 0.2 ->
  // z = {+1, -1}.
  shards[0].docs = {0, 1};
  shards[0].cosines = {0.8, 0.4};
  // Shard 1: cosines {0.3, 0.1, 0.2} -> mean 0.2, sigma sqrt(1/150).
  shards[1].docs = {2, 3, 4};
  shards[1].cosines = {0.3, 0.1, 0.2};

  FusionOptions opts;
  opts.policy = MergePolicy::kZScore;
  const auto fused = fuse(shards, opts);
  ASSERT_EQ(fused.size(), 5u);

  const double sigma1 = std::sqrt(((0.1 * 0.1) + (0.1 * 0.1)) / 3.0);
  // Doc 2 tops shard 1 with z = 0.1 / sigma1 ~= 1.2247 > 1, so despite its
  // raw cosine 0.3 being far below shard 0's 0.8 it now ranks FIRST — the
  // scale correction in action.
  EXPECT_EQ(fused[0].doc, 2u);
  EXPECT_NEAR(fused[0].score, 0.1 / sigma1, 1e-12);
  EXPECT_EQ(fused[0].cosine, 0.3);  // raw cosine preserved for display
  EXPECT_EQ(fused[1].doc, 0u);
  EXPECT_NEAR(fused[1].score, 1.0, 1e-12);
  // Middle element of shard 1 sits exactly at its mean.
  const auto it4 = std::find_if(fused.begin(), fused.end(),
                                [](const FusedHit& h) { return h.doc == 4; });
  ASSERT_NE(it4, fused.end());
  EXPECT_NEAR(it4->score, 0.0, 1e-12);
}

TEST(GatherFusion, ZScorePrefersTheFullSweepBackgroundMoments) {
  // When a ShardList carries the shard's full-sweep ScoreMoments
  // (bg_count > 0), kZScore standardizes against THOSE — the truncated
  // list's own moments (which would give z = {+1, -1} here) are only the
  // fallback for fixtures that never ran a sweep.
  std::vector<ShardList> shards(1);
  shards[0].docs = {0, 1};
  shards[0].cosines = {0.8, 0.4};
  shards[0].bg_count = 100;
  shards[0].bg_mean = 0.2;
  shards[0].bg_stdev = 0.1;

  FusionOptions opts;
  opts.policy = MergePolicy::kZScore;
  const auto fused = fuse(shards, opts);
  ASSERT_EQ(fused.size(), 2u);
  EXPECT_NEAR(fused[0].score, (0.8 - 0.2) / 0.1, 1e-12);
  EXPECT_NEAR(fused[1].score, (0.4 - 0.2) / 0.1, 1e-12);

  // Zero-variance background degrades to the neutral score, never NaN.
  shards[0].bg_stdev = 0.0;
  const auto flat = fuse(shards, opts);
  EXPECT_EQ(flat[0].score, 0.0);
  EXPECT_EQ(flat[1].score, 0.0);
}

TEST(GatherFusion, ZScoreZeroVarianceShardIsNeutral) {
  // A shard whose list has zero variance (every cosine equal — the
  // degenerate all-tied case) must normalize to 0, not NaN/inf.
  std::vector<ShardList> shards(2);
  shards[0].docs = {0, 1};
  shards[0].cosines = {0.7, 0.7};
  shards[1].docs = {2};  // single element: sigma is 0 by construction
  shards[1].cosines = {0.9};

  FusionOptions opts;
  opts.policy = MergePolicy::kZScore;
  const auto fused = fuse(shards, opts);
  ASSERT_EQ(fused.size(), 3u);
  for (const auto& h : fused) {
    EXPECT_EQ(h.score, 0.0) << "doc " << h.doc;
  }
  // All scores tie at 0 -> global ids ascend.
  EXPECT_EQ(fused[0].doc, 0u);
  EXPECT_EQ(fused[1].doc, 1u);
  EXPECT_EQ(fused[2].doc, 2u);
}

TEST(GatherFusion, RRFScoresAreReciprocalRanks) {
  std::vector<ShardList> shards(2);
  shards[0].docs = {5, 3};
  shards[0].cosines = {0.9, 0.2};
  shards[1].docs = {8};
  shards[1].cosines = {0.1};

  FusionOptions opts;
  opts.policy = MergePolicy::kRRF;
  opts.rrf_k = 60.0;
  const auto fused = fuse(shards, opts);
  ASSERT_EQ(fused.size(), 3u);

  // Rank starts at 1 inside each shard: docs 5 and 8 are both rank 1 ->
  // identical scores 1/61, tie broken by global id (5 before 8).
  EXPECT_EQ(fused[0].doc, 5u);
  EXPECT_EQ(fused[0].score, 1.0 / 61.0);
  EXPECT_EQ(fused[1].doc, 8u);
  EXPECT_EQ(fused[1].score, 1.0 / 61.0);
  EXPECT_EQ(fused[2].doc, 3u);
  EXPECT_EQ(fused[2].score, 1.0 / 62.0);
  // RRF ignores cosines entirely: shard 1's 0.1 rank-1 beats shard 0's 0.2
  // rank-2 even though the raw score is lower.
  EXPECT_GT(fused[1].score, fused[2].score);
}

TEST(GatherFusion, TopZTruncatesAfterTheGlobalSort) {
  std::vector<ShardList> shards(2);
  shards[0].docs = {0, 1, 2};
  shards[0].cosines = {0.9, 0.8, 0.7};
  shards[1].docs = {3, 4, 5};
  shards[1].cosines = {0.85, 0.75, 0.65};

  const auto top2 = fuse(shards, FusionOptions{}, 2);
  ASSERT_EQ(top2.size(), 2u);
  EXPECT_EQ(top2[0].doc, 0u);
  EXPECT_EQ(top2[1].doc, 3u);

  const auto all = fuse(shards, FusionOptions{}, 0);
  EXPECT_EQ(all.size(), 6u);  // 0 = unlimited
}

TEST(GatherFusion, ShardFieldRecordsTheOriginShard) {
  std::vector<ShardList> shards(3);
  shards[0].docs = {0};
  shards[0].cosines = {0.1};
  shards[2].docs = {9};
  shards[2].cosines = {0.9};  // shard 1 left empty on purpose

  const auto fused = fuse(shards, FusionOptions{});
  ASSERT_EQ(fused.size(), 2u);
  EXPECT_EQ(fused[0].doc, 9u);
  EXPECT_EQ(fused[0].shard, 2u);
  EXPECT_EQ(fused[1].doc, 0u);
  EXPECT_EQ(fused[1].shard, 0u);
}

// ---------------------------------------------------------------------------
// Near-duplicate collapse
// ---------------------------------------------------------------------------

TEST(GatherFusion, SparseCosineMergesByTermString) {
  const SparseTermVector a = {{"alpha", 1.0}, {"beta", 2.0}};
  const SparseTermVector b = {{"alpha", 1.0}, {"beta", 2.0}};
  EXPECT_NEAR(sparse_cosine(a, b), 1.0, 1e-12);

  const SparseTermVector c = {{"gamma", 3.0}};
  EXPECT_EQ(sparse_cosine(a, c), 0.0);  // disjoint vocabularies

  const SparseTermVector empty;
  EXPECT_EQ(sparse_cosine(a, empty), 0.0);
  EXPECT_EQ(sparse_cosine(empty, empty), 0.0);

  // Partial overlap: a . d = 1*1 + 2*(-2) = -3; |a| = sqrt(5), |d| = sqrt(5).
  const SparseTermVector d = {{"alpha", 1.0}, {"beta", -2.0}};
  EXPECT_NEAR(sparse_cosine(a, d), -3.0 / 5.0, 1e-12);
}

TEST(GatherFusion, ReconstructTermProfileIsUSigmaVRow) {
  // m = 3 terms, k = 2, n = 2 docs. Column-major DenseMatrix built row-wise.
  const auto u = la::DenseMatrix::from_rows({{1.0, 0.0},
                                             {0.0, 1.0},
                                             {1.0, 1.0}});
  const std::vector<double> sigma = {2.0, 3.0};
  const auto v = la::DenseMatrix::from_rows({{1.0, 0.0},
                                             {0.5, 0.5}});
  text::Vocabulary vocab({"apple", "pear", "quince"});

  // Doc 0: U * (sigma .* [1, 0]) = U * [2, 0] = [2, 0, 2]; the zero weight
  // for "pear" must be dropped from the sparse profile.
  const auto p0 = reconstruct_term_profile(u, sigma, v, 0, vocab);
  ASSERT_EQ(p0.size(), 2u);
  EXPECT_EQ(p0[0].first, "apple");  // sorted by term string
  EXPECT_NEAR(p0[0].second, 2.0, 1e-12);
  EXPECT_EQ(p0[1].first, "quince");
  EXPECT_NEAR(p0[1].second, 2.0, 1e-12);

  // Doc 1: U * [1.0, 1.5] = [1.0, 1.5, 2.5]; top_terms = 2 keeps the two of
  // largest magnitude (quince 2.5, pear 1.5), still emitted term-sorted.
  const auto p1 = reconstruct_term_profile(u, sigma, v, 1, vocab, 2);
  ASSERT_EQ(p1.size(), 2u);
  EXPECT_EQ(p1[0].first, "pear");
  EXPECT_NEAR(p1[0].second, 1.5, 1e-12);
  EXPECT_EQ(p1[1].first, "quince");
  EXPECT_NEAR(p1[1].second, 2.5, 1e-12);
}

std::vector<FusedHit> make_fused(std::size_t n) {
  std::vector<FusedHit> fused;
  for (std::size_t i = 0; i < n; ++i) {
    fused.push_back({/*doc=*/i, /*score=*/1.0 - 0.1 * static_cast<double>(i),
                     /*cosine=*/0.0, /*shard=*/0});
  }
  return fused;
}

TEST(GatherFusion, CollapseFoldsNearDuplicatesIntoBestRankedRep) {
  // Profiles: 0 and 2 identical, 1 orthogonal, 3 a near-copy of 0.
  const auto fused = make_fused(4);
  std::vector<SparseTermVector> profiles = {
      {{"a", 1.0}, {"b", 1.0}},
      {{"c", 1.0}},
      {{"a", 1.0}, {"b", 1.0}},
      {{"a", 1.0}, {"b", 0.9}},
  };
  const auto collapsed = collapse_near_duplicates(fused, profiles, 0.99);
  ASSERT_EQ(collapsed.size(), 2u);
  EXPECT_EQ(collapsed[0].rep.doc, 0u);  // survivors keep fused order
  ASSERT_EQ(collapsed[0].duplicates.size(), 2u);
  EXPECT_EQ(collapsed[0].duplicates[0], 2u);  // duplicates in rank order
  EXPECT_EQ(collapsed[0].duplicates[1], 3u);
  EXPECT_EQ(collapsed[1].rep.doc, 1u);
  EXPECT_TRUE(collapsed[1].duplicates.empty());
}

TEST(GatherFusion, CollapseThresholdOutsideUnitIntervalIsDisabled) {
  const auto fused = make_fused(2);
  const std::vector<SparseTermVector> profiles = {
      {{"a", 1.0}},
      {{"a", 1.0}},  // identical: would collapse under any active threshold
  };
  for (double t : {-1.0, 0.0, 1.5}) {
    const auto collapsed = collapse_near_duplicates(fused, profiles, t);
    ASSERT_EQ(collapsed.size(), 2u) << "threshold " << t;
    EXPECT_TRUE(collapsed[0].duplicates.empty());
    EXPECT_TRUE(collapsed[1].duplicates.empty());
  }
  // threshold = 1.0 is the inclusive edge: exact duplicates still collapse.
  const auto edge = collapse_near_duplicates(fused, profiles, 1.0);
  ASSERT_EQ(edge.size(), 1u);
  ASSERT_EQ(edge[0].duplicates.size(), 1u);
  EXPECT_EQ(edge[0].duplicates[0], 1u);
}

TEST(GatherFusion, CollapseJoinsTheFirstMatchingRepresentative) {
  // Hit 2 matches BOTH reps (0 and 1) above threshold; greedy best-first
  // must fold it into the earlier (better-ranked) rep 0 deterministically.
  const auto fused = make_fused(3);
  // cos(0, 2) = cos(1, 2) = 1/sqrt(1.25) ~= 0.894 >= 0.85, but
  // cos(0, 1) = 0.75/1.25 = 0.6 < 0.85, so 0 and 1 stay distinct reps.
  const std::vector<SparseTermVector> profiles = {
      {{"a", 1.0}, {"b", 0.5}},
      {{"a", 1.0}, {"b", -0.5}},
      {{"a", 1.0}},
  };
  const auto collapsed = collapse_near_duplicates(fused, profiles, 0.85);
  ASSERT_EQ(collapsed.size(), 2u);
  EXPECT_EQ(collapsed[0].rep.doc, 0u);
  ASSERT_EQ(collapsed[0].duplicates.size(), 1u);
  EXPECT_EQ(collapsed[0].duplicates[0], 2u);
  EXPECT_EQ(collapsed[1].rep.doc, 1u);
}

// ---------------------------------------------------------------------------
// Facets
// ---------------------------------------------------------------------------

TEST(GatherFusion, ShardFacetsScoreTermsAgainstTheHitCentroid) {
  // Terms "north"/"south" point along opposite axes; docs 0 and 1 both sit
  // on the +x axis, so the centroid is +x: "north" gets weight 1, "south"
  // scores negative and is dropped, "mixed" lands in between.
  const auto u = la::DenseMatrix::from_rows({{1.0, 0.0},
                                             {-1.0, 0.0},
                                             {1.0, 1.0}});
  const std::vector<double> sigma = {1.0, 1.0};
  const auto v = la::DenseMatrix::from_rows({{1.0, 0.0},
                                             {0.5, 0.0}});
  text::Vocabulary vocab({"north", "south", "mixed"});

  const auto facets =
      shard_facets(u, sigma, v, vocab, {la::index_t{0}, la::index_t{1}}, 8);
  ASSERT_EQ(facets.size(), 2u);
  EXPECT_EQ(facets[0].term, "north");
  EXPECT_NEAR(facets[0].weight, 1.0, 1e-12);
  EXPECT_EQ(facets[1].term, "mixed");
  EXPECT_NEAR(facets[1].weight, 1.0 / std::sqrt(2.0), 1e-12);

  // top_terms truncates after the weight-desc/term-asc sort.
  const auto top1 =
      shard_facets(u, sigma, v, vocab, {la::index_t{0}}, 1);
  ASSERT_EQ(top1.size(), 1u);
  EXPECT_EQ(top1[0].term, "north");

  // Degenerate inputs produce no facets rather than dividing by zero.
  EXPECT_TRUE(shard_facets(u, sigma, v, vocab, {}, 8).empty());
  EXPECT_TRUE(shard_facets(u, sigma, v, vocab, {la::index_t{0}}, 0).empty());
}

TEST(GatherFusion, MergeFacetsKeepsMaxWeightPerTermOrderIndependently) {
  const std::vector<Facet> a = {{"lsi", 0.9}, {"svd", 0.5}};
  const std::vector<Facet> b = {{"svd", 0.7}, {"rank", 0.6}};

  const auto ab = merge_facets({a, b}, 0);
  const auto ba = merge_facets({b, a}, 0);
  ASSERT_EQ(ab.size(), 3u);
  EXPECT_EQ(ab[0].term, "lsi");
  EXPECT_EQ(ab[1].term, "svd");
  EXPECT_EQ(ab[1].weight, 0.7);  // max across shards, not first-seen
  EXPECT_EQ(ab[2].term, "rank");
  ASSERT_EQ(ba.size(), ab.size());
  for (std::size_t i = 0; i < ab.size(); ++i) {
    EXPECT_EQ(ab[i].term, ba[i].term) << i;
    EXPECT_EQ(ab[i].weight, ba[i].weight) << i;
  }

  const auto top2 = merge_facets({a, b}, 2);
  ASSERT_EQ(top2.size(), 2u);
  EXPECT_EQ(top2[0].term, "lsi");
  EXPECT_EQ(top2[1].term, "svd");
}

TEST(GatherFusion, MergeFacetsBreaksWeightTiesAlphabetically) {
  const std::vector<Facet> a = {{"zebra", 0.5}, {"aardvark", 0.5}};
  const auto merged = merge_facets({a}, 0);
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged[0].term, "aardvark");
  EXPECT_EQ(merged[1].term, "zebra");
}

// ---------------------------------------------------------------------------
// Term-statistics exchange
// ---------------------------------------------------------------------------

text::Collection stats_collection() {
  // Repeated terms across documents with varying tf: exercises every branch
  // of the global-weight formulas (df < n, gf > df, tf > 1 for the entropy
  // and normal sums).
  text::Collection docs;
  docs.push_back({"d0", "system system human interface"});
  docs.push_back({"d1", "system user interface response response"});
  docs.push_back({"d2", "human tree graph"});
  docs.push_back({"d3", "tree tree graph minor survey"});
  docs.push_back({"d4", "survey graph system"});
  return docs;
}

TEST(GatherTermStats, WeightsForMatchesMonolithicGlobalWeights) {
  const auto docs = stats_collection();
  const auto tdm = text::build_term_document_matrix(docs);

  TermStatsPartial partial;
  partial.add_counts(tdm.counts, tdm.vocabulary);
  TermStatsExchange exchange(1);
  exchange.accumulate(0, partial);
  const auto stats = exchange.publish();
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->docs(), docs.size());

  using weighting::GlobalWeight;
  for (GlobalWeight g : {GlobalWeight::kNone, GlobalWeight::kIdf,
                         GlobalWeight::kEntropy, GlobalWeight::kGfIdf,
                         GlobalWeight::kNormal}) {
    const auto want = weighting::global_weights(tdm.counts, g);
    const auto got = stats->weights_for(tdm.vocabulary, g);
    ASSERT_EQ(got.size(), want.size()) << weighting::name(g);
    for (std::size_t i = 0; i < want.size(); ++i) {
      // Numerically identical, not bit-identical: the entropy branch uses
      // the additive identity sum p log2 p = (sum tf log2 tf)/gf - log2 gf,
      // which reorders the monolithic accumulation.
      EXPECT_NEAR(got[i], want[i], 1e-12)
          << weighting::name(g) << " term " << tdm.vocabulary.term(i);
    }
  }
}

TEST(GatherTermStats, PartitionedAccumulationEqualsWholeCollection) {
  const auto docs = stats_collection();
  // Whole-collection reference.
  const auto whole = text::build_term_document_matrix(docs);
  TermStatsPartial ref;
  ref.add_counts(whole.counts, whole.vocabulary);

  // The same documents split 3 / 2 across two shard slots, each parsed with
  // its own independent vocabulary (exactly the sharded build's shape).
  text::Collection slice_a(docs.begin(), docs.begin() + 3);
  text::Collection slice_b(docs.begin() + 3, docs.end());
  const auto tdm_a = text::build_term_document_matrix(slice_a);
  const auto tdm_b = text::build_term_document_matrix(slice_b);

  TermStatsExchange exchange(2);
  TermStatsPartial pa, pb;
  pa.add_counts(tdm_a.counts, tdm_a.vocabulary);
  pb.add_counts(tdm_b.counts, tdm_b.vocabulary);
  exchange.accumulate(0, pa);
  exchange.accumulate(1, pb);
  const auto stats = exchange.publish();

  EXPECT_EQ(stats->docs(), ref.docs);
  EXPECT_EQ(stats->num_terms(), ref.terms.size());
  for (const auto& [term, want] : ref.terms) {
    const TermStats* got = stats->find(term);
    ASSERT_NE(got, nullptr) << term;
    EXPECT_EQ(got->df, want.df) << term;
    EXPECT_NEAR(got->gf, want.gf, 1e-12) << term;
    EXPECT_NEAR(got->tf_log_tf, want.tf_log_tf, 1e-12) << term;
    EXPECT_NEAR(got->tf_sq, want.tf_sq, 1e-12) << term;
  }
}

TEST(GatherTermStats, StreamedDocumentsAndVersionedRepublish) {
  TermStatsExchange exchange(2);
  EXPECT_EQ(exchange.current(), nullptr);  // nothing before first publish

  TermStatsPartial build;
  build.add_document(text::document_term_counts("graph tree tree"));
  exchange.accumulate(0, build);
  const auto v1 = exchange.publish();
  EXPECT_EQ(v1->version(), 1u);
  EXPECT_EQ(v1->docs(), 1u);

  // A streamed add lands in the NEXT publish, not the current snapshot.
  exchange.accumulate_document(
      1, text::document_term_counts("graph minor survey"));
  EXPECT_EQ(exchange.current()->version(), 1u);
  EXPECT_EQ(exchange.current()->docs(), 1u);

  const auto v2 = exchange.publish();
  EXPECT_EQ(v2->version(), 2u);
  EXPECT_EQ(v2->docs(), 2u);
  const TermStats* graph = v2->find("graph");
  ASSERT_NE(graph, nullptr);
  EXPECT_EQ(graph->df, 2u);
  EXPECT_EQ(graph->gf, 2.0);
  const TermStats* tree = v2->find("tree");
  ASSERT_NE(tree, nullptr);
  EXPECT_EQ(tree->df, 1u);
  EXPECT_EQ(tree->gf, 2.0);
  EXPECT_NEAR(tree->tf_log_tf, 2.0, 1e-12);  // 2 * log2(2)
  EXPECT_EQ(tree->tf_sq, 4.0);
  // The old snapshot is immutable: holders of v1 still see version 1.
  EXPECT_EQ(v1->version(), 1u);
  EXPECT_EQ(v1->docs(), 1u);
}

TEST(GatherTermStats, UnseenTermsGetTheEmptyStatisticsConventions) {
  TermStatsExchange exchange(1);
  TermStatsPartial p;
  p.add_document(text::document_term_counts("known word"));
  exchange.accumulate(0, p);
  const auto stats = exchange.publish();

  EXPECT_EQ(stats->find("absent"), nullptr);

  text::Vocabulary vocab({"absent", "known"});
  using weighting::GlobalWeight;
  // df = 0 conventions must match weighting::global_weights exactly:
  // 0 for idf/gfidf/normal, 1 for entropy (entropy sum is 0) and none.
  EXPECT_EQ(stats->weights_for(vocab, GlobalWeight::kIdf)[0], 0.0);
  EXPECT_EQ(stats->weights_for(vocab, GlobalWeight::kGfIdf)[0], 0.0);
  EXPECT_EQ(stats->weights_for(vocab, GlobalWeight::kNormal)[0], 0.0);
  EXPECT_EQ(stats->weights_for(vocab, GlobalWeight::kEntropy)[0], 1.0);
  EXPECT_EQ(stats->weights_for(vocab, GlobalWeight::kNone)[0], 1.0);
  // The known term is weighted normally alongside it.
  EXPECT_GT(stats->weights_for(vocab, GlobalWeight::kIdf)[1], 0.0);
}

}  // namespace
