// Gather determinism end-to-end (CTest label "integration"): the ISSUE-10
// contract that cross-shard score ties resolve identically across runs and
// merge policies, including under replicated shards (R > 1). Every policy is
// a deterministic function of the pinned snapshot contents — repeated
// identical queries must produce bit-identical rankings, scores included,
// and the rich gather path must agree with the plain rank path wherever
// their contracts overlap.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "lsi/lsi.hpp"
#include "lsi/sharding/sharded_index.hpp"
#include "synth/corpus.hpp"

namespace {

using namespace lsi;
using namespace lsi::core;

synth::SyntheticCorpus gather_corpus() {
  // Off-dominant query forms and cross-topic leakage make per-shard spaces
  // genuinely diverge, so the fusion policies have real work to do and any
  // nondeterminism in the gather would surface as a ranking diff.
  synth::CorpusSpec spec;
  spec.topics = 6;
  spec.concepts_per_topic = 5;
  spec.docs_per_topic = 12;
  spec.mean_doc_len = 50.0;
  spec.general_prob = 0.25;
  spec.own_topic_prob = 0.85;
  spec.queries_per_topic = 3;
  spec.query_len = 4;
  spec.query_offform_prob = 0.5;
  spec.seed = 1097;
  return synth::generate_corpus(spec);
}

std::vector<std::string> query_texts(const synth::SyntheticCorpus& corpus) {
  std::vector<std::string> texts;
  for (const auto& q : corpus.queries) texts.push_back(q.text);
  return texts;
}

ShardingOptions sharded_options(std::size_t shards, std::size_t replicas = 1) {
  ShardingOptions sopts;
  sopts.num_shards = shards;
  sopts.replicas = replicas;
  sopts.index.k = 20;
  sopts.split_k_budget = false;
  return sopts;
}

const std::vector<gather::MergePolicy> kAllPolicies = {
    gather::MergePolicy::kRawCosine, gather::MergePolicy::kZScore,
    gather::MergePolicy::kRRF};

void expect_identical_rankings(
    const std::vector<std::vector<ScoredDoc>>& a,
    const std::vector<std::vector<ScoredDoc>>& b, const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t q = 0; q < a.size(); ++q) {
    ASSERT_EQ(a[q].size(), b[q].size()) << what << " query " << q;
    for (std::size_t i = 0; i < a[q].size(); ++i) {
      EXPECT_EQ(a[q][i].doc, b[q][i].doc)
          << what << " query " << q << " rank " << i;
      EXPECT_EQ(a[q][i].cosine, b[q][i].cosine)  // exact bits
          << what << " query " << q << " rank " << i;
    }
  }
}

TEST(GatherDeterminism, RepeatedRunsAreBitIdenticalPerPolicy) {
  const auto corpus = gather_corpus();
  const auto texts = query_texts(corpus);
  auto sharded =
      ShardedIndex::try_build(corpus.docs, sharded_options(4)).value();
  const auto snap = sharded.snapshot();

  for (gather::MergePolicy policy : kAllPolicies) {
    SearchOptions opts;
    opts.z = 10;
    opts.merge = policy;
    const auto first = snap.rank_batch(texts, opts);
    const auto second = snap.rank_batch(texts, opts);
    expect_identical_rankings(first, second,
                              gather::merge_policy_name(policy).data());
  }
}

TEST(GatherDeterminism, ReplicatedShardsRankIdenticallyAcrossRuns) {
  const auto corpus = gather_corpus();
  const auto texts = query_texts(corpus);
  auto sharded = ShardedIndex::try_build(corpus.docs,
                                         sharded_options(4, /*replicas=*/2))
                     .value();

  for (gather::MergePolicy policy : kAllPolicies) {
    SearchOptions opts;
    opts.z = 10;
    opts.merge = policy;
    // Fresh snapshots per run: round-robin replica selection may pin
    // DIFFERENT replicas each time, and the rankings must not care — every
    // replica of a shard holds the same document sequence.
    const auto first = sharded.snapshot().rank_batch(texts, opts);
    const auto second = sharded.snapshot().rank_batch(texts, opts);
    expect_identical_rankings(first, second,
                              gather::merge_policy_name(policy).data());
  }
}

TEST(GatherDeterminism, GatherBatchAgreesWithRankBatchUnderEveryPolicy) {
  // With collapse and facets off, gather_batch is rank_batch plus hit
  // metadata — doc order and fusion scores must match exactly, raw cosines
  // included.
  const auto corpus = gather_corpus();
  const auto texts = query_texts(corpus);
  auto sharded =
      ShardedIndex::try_build(corpus.docs, sharded_options(4)).value();
  const auto snap = sharded.snapshot();

  for (gather::MergePolicy policy : kAllPolicies) {
    SearchOptions opts;
    opts.z = 10;
    opts.merge = policy;
    const auto ranked = snap.rank_batch(texts, opts);
    const auto gathered = snap.gather_batch(texts, opts);
    ASSERT_EQ(gathered.size(), ranked.size());
    for (std::size_t q = 0; q < ranked.size(); ++q) {
      ASSERT_EQ(gathered[q].hits.size(), ranked[q].size())
          << "policy " << gather::merge_policy_name(policy) << " query " << q;
      EXPECT_TRUE(gathered[q].facets.empty());
      for (std::size_t i = 0; i < ranked[q].size(); ++i) {
        EXPECT_EQ(gathered[q].hits[i].doc, ranked[q][i].doc)
            << "query " << q << " rank " << i;
        EXPECT_EQ(gathered[q].hits[i].score, ranked[q][i].cosine)
            << "query " << q << " rank " << i;
        EXPECT_TRUE(gathered[q].hits[i].duplicates.empty());
      }
    }
  }
}

TEST(GatherDeterminism, CollapseAndFacetsAreStableAcrossRuns) {
  const auto corpus = gather_corpus();
  const auto texts = query_texts(corpus);
  auto sharded =
      ShardedIndex::try_build(corpus.docs, sharded_options(4)).value();
  const auto snap = sharded.snapshot();

  SearchOptions opts;
  opts.z = 10;
  opts.merge = gather::MergePolicy::kZScore;
  opts.collapse_cosine = 0.9;
  opts.facets = 8;

  const auto first = snap.gather_batch(texts, opts);
  const auto second = snap.gather_batch(texts, opts);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t q = 0; q < first.size(); ++q) {
    ASSERT_EQ(first[q].hits.size(), second[q].hits.size()) << "query " << q;
    for (std::size_t i = 0; i < first[q].hits.size(); ++i) {
      EXPECT_EQ(first[q].hits[i].doc, second[q].hits[i].doc);
      EXPECT_EQ(first[q].hits[i].score, second[q].hits[i].score);
      EXPECT_EQ(first[q].hits[i].cosine, second[q].hits[i].cosine);
      EXPECT_EQ(first[q].hits[i].shard, second[q].hits[i].shard);
      EXPECT_EQ(first[q].hits[i].duplicates, second[q].hits[i].duplicates);
    }
    ASSERT_EQ(first[q].facets.size(), second[q].facets.size()) << q;
    for (std::size_t i = 0; i < first[q].facets.size(); ++i) {
      EXPECT_EQ(first[q].facets[i].term, second[q].facets[i].term);
      EXPECT_EQ(first[q].facets[i].weight, second[q].facets[i].weight);
    }
    ASSERT_LE(first[q].facets.size(), opts.facets);
  }
}

TEST(GatherDeterminism, SingleShardPolicyTransformsPreserveRawOrder) {
  // At N = 1 every policy is a monotone transform of one shard's canonical
  // list (z-score is affine with positive scale when sigma > 0; RRF is a
  // strictly decreasing function of rank) — so the DOCUMENT ORDER must be
  // identical to raw cosine even though scores differ.
  const auto corpus = gather_corpus();
  const auto texts = query_texts(corpus);
  auto sharded =
      ShardedIndex::try_build(corpus.docs, sharded_options(1)).value();
  const auto snap = sharded.snapshot();

  SearchOptions raw;
  raw.z = 10;
  const auto want = snap.rank_batch(texts, raw);

  for (gather::MergePolicy policy :
       {gather::MergePolicy::kZScore, gather::MergePolicy::kRRF}) {
    SearchOptions opts;
    opts.z = 10;
    opts.merge = policy;
    const auto got = snap.rank_batch(texts, opts);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t q = 0; q < want.size(); ++q) {
      ASSERT_EQ(got[q].size(), want[q].size()) << "query " << q;
      for (std::size_t i = 0; i < want[q].size(); ++i) {
        EXPECT_EQ(got[q][i].doc, want[q][i].doc)
            << gather::merge_policy_name(policy) << " query " << q << " rank "
            << i;
      }
    }
  }
}

TEST(GatherDeterminism, TermStatsExchangeBuildsAreReproducible) {
  const auto corpus = gather_corpus();
  const auto texts = query_texts(corpus);

  auto opts = sharded_options(4);
  opts.share_term_stats = true;

  auto a = ShardedIndex::try_build(corpus.docs, opts).value();
  auto b = ShardedIndex::try_build(corpus.docs, opts).value();

  const auto info = a.term_stats_info();
  EXPECT_TRUE(info.enabled);
  EXPECT_EQ(info.version, 1u);  // the build-time exchange
  EXPECT_EQ(info.docs, corpus.docs.size());
  EXPECT_GT(info.terms, 0u);

  SearchOptions qopts;
  qopts.z = 10;
  qopts.merge = gather::MergePolicy::kZScore;
  expect_identical_rankings(a.snapshot().rank_batch(texts, qopts),
                            b.snapshot().rank_batch(texts, qopts),
                            "exchange-on rebuild");

  // Without the exchange the info row reports disabled and refresh is null.
  auto plain =
      ShardedIndex::try_build(corpus.docs, sharded_options(4)).value();
  EXPECT_FALSE(plain.term_stats_info().enabled);
  EXPECT_EQ(plain.refresh_term_stats(), nullptr);

  // Streamed adds republish under the next version.
  ASSERT_TRUE(a.add({"extra", "latent semantic indexing survey"}).ok());
  a.flush();
  const auto refreshed = a.refresh_term_stats();
  ASSERT_NE(refreshed, nullptr);
  EXPECT_EQ(refreshed->version(), 2u);
  EXPECT_EQ(refreshed->docs(), corpus.docs.size() + 1);
  EXPECT_EQ(a.term_stats_info().version, 2u);
}

}  // namespace
