// Relevance-feedback tests, including the negative (Rocchio gamma) term the
// paper lists as unexploited future work.

#include <gtest/gtest.h>

#include "data/med_topics.hpp"
#include "lsi/feedback.hpp"
#include "lsi/retrieval.hpp"
#include "lsi/semantic_space.hpp"

namespace {

using namespace lsi;
using core::index_t;

core::SemanticSpace paper_space(index_t k = 4) {
  return core::try_build_semantic_space(data::table3_counts(), k).value();
}

la::Vector paper_query(const core::SemanticSpace& space) {
  la::Vector raw(18, 0.0);
  raw[0] = raw[1] = raw[3] = 1.0;
  return core::project_query(space, raw);
}

TEST(Feedback, ReplaceWithRelevantIsCentroid) {
  auto space = paper_space();
  auto q = core::replace_with_relevant(space, {7, 8});  // M8, M9
  for (index_t i = 0; i < space.k(); ++i) {
    EXPECT_NEAR(q[i], (space.v(7, i) + space.v(8, i)) / 2.0, 1e-12);
  }
}

TEST(Feedback, ReplaceWithEmptyIsZero) {
  auto space = paper_space();
  auto q = core::replace_with_relevant(space, {});
  for (double v : q) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Feedback, RocchioIdentityWhenNoJudgments) {
  auto space = paper_space();
  auto q = paper_query(space);
  auto q2 = core::rocchio_feedback(space, q, {}, {}, {1.0, 0.75, 0.25});
  for (index_t i = 0; i < space.k(); ++i) EXPECT_NEAR(q2[i], q[i], 1e-12);
}

TEST(Feedback, RocchioLinearCombination) {
  auto space = paper_space();
  auto q = paper_query(space);
  core::RocchioWeights w{0.5, 2.0, 1.0};
  auto q2 = core::rocchio_feedback(space, q, {7}, {0}, w);
  for (index_t i = 0; i < space.k(); ++i) {
    EXPECT_NEAR(q2[i], 0.5 * q[i] + 2.0 * space.v(7, i) - space.v(0, i),
                1e-12);
  }
}

TEST(Feedback, PositiveFeedbackPullsTowardRelevantCluster) {
  auto space = paper_space();
  auto q = paper_query(space);
  // Feed back M8/M9/M12 as relevant: their mutual similarities to the new
  // query must rise relative to the initial one.
  auto q2 = core::rocchio_feedback(space, q, {7, 8, 11}, {},
                                   {1.0, 1.0, 0.0});
  core::QueryOptions opts;
  auto before = core::rank_documents(space, q, opts);
  auto after = core::rank_documents(space, q2, opts);
  auto cosine_of = [](const std::vector<core::ScoredDoc>& r, index_t doc) {
    for (const auto& sd : r) {
      if (sd.doc == doc) return sd.cosine;
    }
    return -2.0;
  };
  EXPECT_GE(cosine_of(after, 8), cosine_of(before, 8) - 1e-9);
}

TEST(Feedback, NegativeFeedbackPushesAwayFromIrrelevant) {
  // The paper's open idea: mark the lexical false positives M1 and M10 as
  // irrelevant; their rank must drop relative to no-feedback retrieval.
  auto space = paper_space();
  auto q = paper_query(space);
  auto q2 = core::rocchio_feedback(space, q, {}, {0, 9},  // M1, M10
                                   {1.0, 0.0, 0.8});

  // Individual ranks can shuffle either way (ranking is relative), but the
  // new query must sit farther from the judged-irrelevant *centroid*, and
  // the pair's aggregate rank must not improve.
  la::Vector centroid(space.k(), 0.0);
  for (index_t d : {0u, 9u}) {
    for (index_t i = 0; i < space.k(); ++i) {
      centroid[i] += space.v(d, i) / 2.0;
    }
  }
  EXPECT_LT(la::cosine(q2, centroid), la::cosine(q, centroid));

  auto rank_of = [&](const la::Vector& query, index_t doc) {
    auto ranked = core::rank_documents(space, query);
    for (std::size_t i = 0; i < ranked.size(); ++i) {
      if (ranked[i].doc == doc) return i;
    }
    return ranked.size();
  };
  EXPECT_GE(rank_of(q2, 0) + rank_of(q2, 9),
            rank_of(q, 0) + rank_of(q, 9));
}

}  // namespace
