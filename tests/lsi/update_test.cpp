// SVD-updating tests (Section 4): each phase must agree with recomputing
// the SVD of the updated matrix whenever A_k = A (full rank), and must keep
// the factor bases orthonormal (the property folding-in loses).

#include <gtest/gtest.h>

#include <cmath>

#include "data/med_topics.hpp"
#include "lsi/folding.hpp"
#include "lsi/retrieval.hpp"
#include "lsi/update.hpp"
#include "synth/sparse_random.hpp"
#include "util/rng.hpp"
#include "weighting/weighting.hpp"

namespace {

using namespace lsi;
using core::SemanticSpace;
using core::index_t;

/// sigma and reconstruction match between two spaces (signs are free).
void expect_spaces_equivalent(const SemanticSpace& a, const SemanticSpace& b,
                              double tol) {
  ASSERT_EQ(a.k(), b.k());
  for (index_t i = 0; i < a.k(); ++i) {
    EXPECT_NEAR(a.sigma[i], b.sigma[i], tol) << "sigma " << i;
  }
  EXPECT_LT(la::max_abs_diff(a.reconstruct(), b.reconstruct()), tol * 10);
}

TEST(UpdateDocuments, EqualsRecomputeWhenSubspaceCoversD) {
  // SVD-updating operates on B = (A_k | D) with D *projected into
  // span(U_k)* (U_B = U_k U_F never leaves it — Section 4.2). When the
  // retained subspace is all of R^m (wide full-rank A, k = m), the method
  // must agree with recomputing the SVD of (A | D) exactly.
  auto a = synth::random_sparse_matrix(8, 14, 0.5, 1);
  auto d = synth::random_sparse_matrix(8, 3, 0.5, 2);
  auto space = core::try_build_semantic_space(a, 8).value();  // k = m: U spans R^m
  core::update_documents(space, d);

  auto recomputed = core::try_build_semantic_space(a.with_appended_cols(d), 8).value();
  expect_spaces_equivalent(space, recomputed, 1e-9);
}

TEST(UpdateDocuments, EqualsRecomputeOfProjectedMatrix) {
  // General case: the update is the exact SVD of (A_k | P_U D) where
  // P_U = U_k U_k^T projects the new documents onto the retained term
  // subspace.
  auto a = synth::random_sparse_matrix(14, 9, 0.5, 21);
  auto d = synth::random_sparse_matrix(14, 3, 0.5, 22);
  const index_t k = 5;
  auto space = core::try_build_semantic_space(a, k).value();
  const auto u_before = space.u;
  const auto sigma_before = space.sigma;
  const auto v_before = space.v;

  // Build (A_k | P_U D) explicitly.
  auto ak = la::multiply_a_bt(la::scale_cols(u_before, sigma_before),
                              v_before);
  auto utd = la::multiply_at_b(u_before, d.to_dense());   // k x p
  auto proj_d = la::multiply(u_before, utd);              // m x p
  auto b = ak;
  b.append_cols(proj_d);

  core::update_documents(space, d);
  auto recomputed =
      core::try_build_semantic_space(la::CscMatrix::from_dense(b), k).value();
  expect_spaces_equivalent(space, recomputed, 1e-8);
}

TEST(UpdateDocuments, ShapesAndOrthogonality) {
  auto a = synth::random_sparse_matrix(30, 20, 0.2, 3);
  auto space = core::try_build_semantic_space(a, 6).value();
  core::update_documents(space, synth::random_sparse_matrix(30, 5, 0.2, 4));
  EXPECT_EQ(space.num_docs(), 25u);
  EXPECT_EQ(space.k(), 6u);
  EXPECT_LT(core::orthogonality_loss(space.u), 1e-10);
  EXPECT_LT(core::orthogonality_loss(space.v), 1e-10);
}

TEST(UpdateDocuments, BetterThanFoldingOnTruncatedSpace) {
  // With a truncated space, SVD-updating must approximate the recomputed
  // space at least as well as folding-in does (Frobenius distance of the
  // reconstruction to the true updated matrix).
  auto a = synth::random_sparse_matrix(40, 26, 0.15, 5);
  auto d = synth::random_sparse_matrix(40, 6, 0.15, 6);
  const index_t k = 5;

  auto folded = core::try_build_semantic_space(a, k).value();
  core::fold_in_documents(folded, d);
  auto updated = core::try_build_semantic_space(a, k).value();
  core::update_documents(updated, d);

  auto truth = a.with_appended_cols(d).to_dense();
  auto err_fold = truth;
  err_fold.add_scaled(folded.reconstruct(), -1.0);
  auto err_update = truth;
  err_update.add_scaled(updated.reconstruct(), -1.0);
  EXPECT_LE(err_update.frobenius_norm(), err_fold.frobenius_norm() + 1e-9);
}

TEST(UpdateTerms, EqualsRecomputeWhenSubspaceCoversT) {
  // Dual of the documents case: with a tall full-rank A and k = n, V spans
  // the whole document space and term updating is exact.
  auto a = synth::random_sparse_matrix(13, 9, 0.5, 7);
  auto t = synth::random_sparse_matrix(4, 9, 0.5, 8);
  auto space = core::try_build_semantic_space(a, 9).value();  // k = n: V spans R^n
  core::update_terms(space, t);

  auto recomputed = core::try_build_semantic_space(a.with_appended_rows(t), 9).value();
  expect_spaces_equivalent(space, recomputed, 1e-9);
}

TEST(UpdateTerms, ShapesAndOrthogonality) {
  auto a = synth::random_sparse_matrix(22, 18, 0.25, 9);
  auto space = core::try_build_semantic_space(a, 5).value();
  core::update_terms(space, synth::random_sparse_matrix(7, 18, 0.25, 10));
  EXPECT_EQ(space.num_terms(), 29u);
  EXPECT_EQ(space.num_docs(), 18u);
  EXPECT_LT(core::orthogonality_loss(space.u), 1e-10);
  EXPECT_LT(core::orthogonality_loss(space.v), 1e-10);
}

TEST(UpdateWeights, EqualsRecomputeWhenFullRank) {
  // Change global weights of some terms; W = A + Y Z^T must match the
  // directly recomputed SVD. A square full-rank A with k = m = n keeps both
  // Y and Z inside the retained subspaces, so the update is exact.
  auto a = synth::random_sparse_matrix(11, 11, 0.6, 11);
  auto space = core::try_build_semantic_space(a, 11).value();

  std::vector<double> old_g(11, 1.0);
  std::vector<double> new_g(11, 1.0);
  new_g[2] = 1.8;
  new_g[7] = 0.4;
  auto corr = weighting::weight_correction(
      a, weighting::LocalWeight::kRawTf, old_g, new_g);
  core::update_weights(space, corr.y, corr.z);

  auto w = a.to_dense();
  w.add_scaled(la::multiply_a_bt(corr.y, corr.z), 1.0);
  auto recomputed =
      core::try_build_semantic_space(la::CscMatrix::from_dense(w), 11).value();
  expect_spaces_equivalent(space, recomputed, 1e-9);
}

TEST(UpdateWeights, NoChangeIsIdentity) {
  auto a = synth::random_sparse_matrix(12, 10, 0.4, 12);
  auto space = core::try_build_semantic_space(a, 4).value();
  const auto sigma_before = space.sigma;
  la::DenseMatrix y(12, 0), z(10, 0);
  core::update_weights(space, y, z);
  for (index_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(space.sigma[i], sigma_before[i], 1e-12);
  }
}

TEST(UpdatePaperExample, M15JoinsTheRatsCluster) {
  // Section 4.4/4.5: after SVD-updating with M15/M16, {M13, M14, M15} forms
  // a cluster (folding-in fails to produce it) and M16 moves toward the
  // depressed/patients/pressure/fast centroid.
  auto updated = core::try_build_semantic_space(data::table3_counts(), 2).value();
  core::align_signs_to(updated, data::figure5_u2());
  core::update_documents(updated, data::update_document_columns());

  auto folded = core::try_build_semantic_space(data::table3_counts(), 2).value();
  core::align_signs_to(folded, data::figure5_u2());
  core::fold_in_documents(folded, data::update_document_columns());

  // Rats-cluster cohesion (M13=12, M14=13, M15=14): SVD-updating at least
  // as tight as folding-in for the minimum pairwise similarity.
  auto cohesion = [](const SemanticSpace& s) {
    const double a = core::document_similarity(s, 12, 14);
    const double b = core::document_similarity(s, 13, 14);
    return std::min(a, b);
  };
  EXPECT_GE(cohesion(updated), cohesion(folded) - 1e-9);

  // The updated decomposition agrees with recomputing on the 18 x 16
  // matrix much better than folding does (Frobenius reconstruction error).
  auto full = data::table3_counts().with_appended_cols(
      data::update_document_columns());
  auto recomputed = core::try_build_semantic_space(full, 2).value();
  auto err = [&](const SemanticSpace& s) {
    auto diff = full.to_dense();
    diff.add_scaled(s.reconstruct(), -1.0);
    return diff.frobenius_norm();
  };
  EXPECT_LE(err(updated), err(folded) + 1e-9);
  EXPECT_NEAR(err(updated), err(recomputed), 0.35);
}

TEST(UpdateOrder, DocumentsThenTermsMatchesRecompute) {
  // Chained exact update: documents first (k = m so span(U) = R^m), then a
  // term block constructed inside span(V_B) so the second phase is exact
  // too. The chained result must match recomputing the SVD of the full
  // bordered matrix.
  auto a = synth::random_sparse_matrix(8, 12, 0.5, 13);
  auto d = synth::random_sparse_matrix(8, 2, 0.5, 14);
  auto space = core::try_build_semantic_space(a, 8).value();
  core::update_documents(space, d);

  // T = C V_B^T with random C (3 x k): rows of T lie in span(V_B).
  la::DenseMatrix c(3, 8);
  lsi::util::Rng rng(15);
  for (index_t j = 0; j < 8; ++j) {
    for (index_t i = 0; i < 3; ++i) c(i, j) = rng.normal();
  }
  auto t = la::multiply_a_bt(c, space.v);  // 3 x (n+p)
  core::update_terms(space, la::CscMatrix::from_dense(t));

  auto big = a.with_appended_cols(d).to_dense();
  big.append_rows(t);
  auto recomputed =
      core::try_build_semantic_space(la::CscMatrix::from_dense(big), 8).value();
  expect_spaces_equivalent(space, recomputed, 1e-8);
}

}  // namespace
