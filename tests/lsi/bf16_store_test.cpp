// bf16 document-store tests (lsi/doc_store.hpp, docs/KERNELS.md):
// encode/decode round-trip properties, store build/extend determinism, the
// norm-cache consistency contract after extend_doc_norms, and the .lsidb
// serialization regression — a compressed database round-trips byte for
// byte, and an uncompressed database's byte stream is untouched by the
// feature.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <sstream>
#include <vector>

#include "data/med_topics.hpp"
#include "la/kernels.hpp"
#include "lsi/doc_store.hpp"
#include "lsi/io.hpp"
#include "lsi/lsi_index.hpp"
#include "lsi/semantic_space.hpp"
#include "util/rng.hpp"

namespace {

using namespace lsi;
using core::Bf16DocStore;
using core::SemanticSpace;
using core::SimilarityMode;
using la::kern::bf16_from_f32;
using la::kern::bf16_from_f64;
using la::kern::bf16_to_f32;

SemanticSpace random_space(la::index_t n, la::index_t k, std::uint64_t seed) {
  util::Rng rng(seed);
  SemanticSpace space;
  space.u = la::DenseMatrix(4, k);
  space.v = la::DenseMatrix(n, k);
  space.sigma.resize(k);
  for (la::index_t i = 0; i < k; ++i) {
    space.sigma[i] = 2.0 / (1.0 + static_cast<double>(i));
    for (la::index_t j = 0; j < n; ++j) space.v(j, i) = rng.normal();
    for (la::index_t j = 0; j < 4; ++j) space.u(j, i) = rng.normal();
  }
  return space;
}

// --- encode/decode properties -----------------------------------------------

TEST(Bf16Codec, ExactValuesRoundTrip) {
  // Powers of two and short-mantissa values are exactly representable.
  for (float v : {0.0f, 1.0f, -1.0f, 0.5f, 2.0f, -1024.0f, 0.09375f}) {
    EXPECT_EQ(bf16_to_f32(bf16_from_f32(v)), v);
  }
}

TEST(Bf16Codec, RelativeErrorBounded) {
  // bf16 stores 7 mantissa bits (8 significand bits with the implicit 1):
  // round-to-nearest is within a half-ULP, i.e. 2^-8 relative.
  util::Rng rng(42);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.normal() * std::pow(10.0, rng.uniform(-6.0, 6.0));
    const double back = static_cast<double>(bf16_to_f32(bf16_from_f64(x)));
    EXPECT_LE(std::abs(back - x), std::abs(x) * (1.0 / 256.0) + 1e-300)
        << "x=" << x;
  }
}

TEST(Bf16Codec, EncodeIsMonotone) {
  // Monotone non-decreasing decode over increasing input: sampled ascending
  // doubles across signs and magnitudes must never decode out of order.
  std::vector<double> xs;
  util::Rng rng(7);
  for (int i = 0; i < 20000; ++i) {
    xs.push_back(rng.normal() * std::pow(10.0, rng.uniform(-4.0, 4.0)));
  }
  std::sort(xs.begin(), xs.end());
  float prev = -std::numeric_limits<float>::infinity();
  for (const double x : xs) {
    const float d = bf16_to_f32(bf16_from_f64(x));
    EXPECT_LE(prev, d) << "x=" << x;
    prev = d;
  }
}

TEST(Bf16Codec, RoundsToNearestEven) {
  // The bf16 ULP at 1.0 is 2^-7 (7 stored mantissa bits). 1 + 2^-8 sits
  // exactly between neighbors 1.0 and 1 + 2^-7; ties go to the even
  // mantissa (1.0). Nudged above the tie it must round up.
  EXPECT_EQ(bf16_to_f32(bf16_from_f32(1.0f + 0x1.0p-8f)), 1.0f);
  EXPECT_EQ(bf16_to_f32(bf16_from_f32(1.0f + 0x1.1p-8f)), 1.0f + 0x1.0p-7f);
  // 1 + 3*2^-8 ties between 1 + 2^-7 and 1 + 2^-6: even is 1 + 2^-6.
  EXPECT_EQ(bf16_to_f32(bf16_from_f32(1.0f + 0x3.0p-8f)), 1.0f + 0x1.0p-6f);
}

TEST(Bf16Codec, SpecialValues) {
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_EQ(bf16_to_f32(bf16_from_f32(inf)), inf);
  EXPECT_EQ(bf16_to_f32(bf16_from_f32(-inf)), -inf);
  EXPECT_TRUE(std::isnan(
      bf16_to_f32(bf16_from_f32(std::numeric_limits<float>::quiet_NaN()))));
  // Signed zero survives.
  EXPECT_EQ(bf16_from_f32(-0.0f), 0x8000u);
}

// --- store build ------------------------------------------------------------

TEST(Bf16Store, BuildEncodesEveryEntryCanonically) {
  const auto space = random_space(23, 5, 11);
  const auto store = Bf16DocStore::build(space);
  ASSERT_EQ(store->num_docs(), space.num_docs());
  ASSERT_EQ(store->k(), space.k());
  for (la::index_t i = 0; i < space.k(); ++i) {
    for (la::index_t j = 0; j < space.num_docs(); ++j) {
      ASSERT_EQ(store->col(i)[j], bf16_from_f64(space.v(j, i)))
          << "i=" << i << " j=" << j;
    }
  }
}

TEST(Bf16Store, NormsAreDecodedValueNorms) {
  const auto space = random_space(17, 4, 12);
  const auto store = Bf16DocStore::build(space);
  for (const auto mode : {SimilarityMode::kColumnSpace,
                          SimilarityMode::kProjected, SimilarityMode::kPlainV}) {
    const auto norms = store->doc_norms(mode);
    ASSERT_EQ(norms.size(), static_cast<std::size_t>(space.num_docs()));
    const bool scaled = mode != SimilarityMode::kPlainV;
    for (la::index_t j = 0; j < space.num_docs(); ++j) {
      la::Vector doc(space.k());
      for (la::index_t i = 0; i < space.k(); ++i) {
        doc[i] = static_cast<double>(bf16_to_f32(store->col(i)[j]));
        if (scaled) doc[i] *= space.sigma[i];
      }
      ASSERT_EQ(norms[j], la::norm2(doc)) << "j=" << j;
    }
  }
}

TEST(Bf16Store, BuildIsDeterministic) {
  const auto space = random_space(31, 6, 13);
  const auto a = Bf16DocStore::build(space);
  const auto b = Bf16DocStore::build(space);
  ASSERT_EQ(a->payload().size(), b->payload().size());
  for (std::size_t i = 0; i < a->payload().size(); ++i) {
    ASSERT_EQ(a->payload()[i], b->payload()[i]);
  }
}

// --- extend == fresh build --------------------------------------------------

TEST(Bf16Store, ExtendIsBitIdenticalToFreshBuild) {
  const la::index_t n0 = 19, n = 29, k = 5;
  const auto full = random_space(n, k, 14);
  SemanticSpace head = full;
  // Truncate to the first n0 rows (same columns) to play the pre-append
  // space.
  la::DenseMatrix v0(n0, k);
  for (la::index_t i = 0; i < k; ++i) {
    for (la::index_t j = 0; j < n0; ++j) v0(j, i) = full.v(j, i);
  }
  head.v = std::move(v0);

  const auto old_store = Bf16DocStore::build(head);
  const auto extended = Bf16DocStore::extend(*old_store, full);
  const auto fresh = Bf16DocStore::build(full);

  ASSERT_EQ(extended->payload().size(), fresh->payload().size());
  for (std::size_t i = 0; i < extended->payload().size(); ++i) {
    ASSERT_EQ(extended->payload()[i], fresh->payload()[i]) << "i=" << i;
  }
  for (const auto mode : {SimilarityMode::kColumnSpace,
                          SimilarityMode::kProjected, SimilarityMode::kPlainV}) {
    const auto en = extended->doc_norms(mode);
    const auto fn = fresh->doc_norms(mode);
    ASSERT_EQ(en.size(), fn.size());
    for (std::size_t j = 0; j < en.size(); ++j) {
      ASSERT_EQ(en[j], fn[j]) << "j=" << j;
    }
  }
}

TEST(Bf16Store, SpaceExtendHookKeepsStoreConsistent) {
  // Through the SemanticSpace protocol: enable compression, warm the store,
  // append rows (as folding does), call extend_doc_norms — the store must
  // equal a from-scratch build over the larger space.
  auto space = random_space(21, 4, 15);
  space.set_compress_docs(true);
  ASSERT_NE(space.compressed_docs(), nullptr);

  const la::index_t n0 = space.num_docs();
  const auto tail = random_space(6, 4, 16);
  space.v.append_rows(tail.v);
  space.extend_doc_norms(n0);

  const Bf16DocStore* got = space.compressed_docs();
  ASSERT_NE(got, nullptr);
  ASSERT_EQ(got->num_docs(), space.num_docs());
  const auto fresh = Bf16DocStore::build(space);
  ASSERT_EQ(got->payload().size(), fresh->payload().size());
  for (std::size_t i = 0; i < fresh->payload().size(); ++i) {
    ASSERT_EQ(got->payload()[i], fresh->payload()[i]);
  }
  for (const auto mode : {SimilarityMode::kColumnSpace,
                          SimilarityMode::kProjected, SimilarityMode::kPlainV}) {
    const auto gn = got->doc_norms(mode);
    const auto fn = fresh->doc_norms(mode);
    for (std::size_t j = 0; j < fn.size(); ++j) {
      ASSERT_EQ(gn[j], fn[j]);
    }
  }
}

TEST(Bf16Store, InvalidateDropsStoreButKeepsFlag) {
  auto space = random_space(12, 3, 17);
  space.set_compress_docs(true);
  const Bf16DocStore* first = space.compressed_docs();
  ASSERT_NE(first, nullptr);
  space.v(0, 0) += 1.0;  // same-shape mutation
  space.invalidate_doc_norms();
  EXPECT_TRUE(space.compress_docs());
  const Bf16DocStore* second = space.compressed_docs();
  ASSERT_NE(second, nullptr);
  EXPECT_EQ(second->col(0)[0], bf16_from_f64(space.v(0, 0)));
}

// --- .lsidb serialization ---------------------------------------------------

core::LsiDatabase build_med_db(bool compressed) {
  core::IndexOptions opts;
  opts.k = 10;
  opts.compress_docs = compressed;
  auto index = core::LsiIndex::try_build(data::med_topics(), opts).value();
  return core::LsiDatabase{index.space(), index.vocabulary(),
                           index.doc_labels(), index.options().scheme,
                           index.global_weights()};
}

TEST(Bf16Io, CompressedDatabaseRoundTripsByteForByte) {
  const auto db = build_med_db(/*compressed=*/true);
  std::ostringstream out;
  ASSERT_TRUE(core::try_save_database(out, db).ok());
  const std::string bytes = out.str();

  std::istringstream in(bytes);
  const auto loaded = core::try_load_database(in).value();
  EXPECT_TRUE(loaded.space.compress_docs());
  const Bf16DocStore* a = db.space.compressed_docs();
  const Bf16DocStore* b = loaded.space.compressed_docs();
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  ASSERT_EQ(a->payload().size(), b->payload().size());
  for (std::size_t i = 0; i < a->payload().size(); ++i) {
    ASSERT_EQ(a->payload()[i], b->payload()[i]);
  }
  // Norms are recomputed on load from payload + sigma: identical too.
  for (const auto mode : {SimilarityMode::kColumnSpace,
                          SimilarityMode::kProjected, SimilarityMode::kPlainV}) {
    const auto an = a->doc_norms(mode);
    const auto bn = b->doc_norms(mode);
    for (std::size_t j = 0; j < an.size(); ++j) ASSERT_EQ(an[j], bn[j]);
  }

  // Golden regression: resaving the loaded database reproduces the exact
  // byte stream.
  std::ostringstream out2;
  ASSERT_TRUE(core::try_save_database(out2, loaded).ok());
  EXPECT_EQ(bytes, out2.str());
}

TEST(Bf16Io, UncompressedDatabaseBytesUntouched) {
  const auto plain = build_med_db(/*compressed=*/false);
  std::ostringstream out;
  ASSERT_TRUE(core::try_save_database(out, plain).ok());
  const std::string bytes = out.str();

  // Loads as uncompressed, resaves identically: the optional section never
  // perturbs databases that do not use it.
  std::istringstream in(bytes);
  const auto loaded = core::try_load_database(in).value();
  EXPECT_FALSE(loaded.space.compress_docs());
  EXPECT_EQ(loaded.space.compressed_docs(), nullptr);
  std::ostringstream out2;
  ASSERT_TRUE(core::try_save_database(out2, loaded).ok());
  EXPECT_EQ(bytes, out2.str());

  // The compressed variant of the same index appends EXACTLY the trailing
  // section: marker + two dims (8 bytes each) + n*k encoded uint16 words.
  const auto compressed = build_med_db(/*compressed=*/true);
  std::ostringstream outc;
  ASSERT_TRUE(core::try_save_database(outc, compressed).ok());
  const std::size_t n = compressed.space.num_docs();
  const std::size_t k = compressed.space.k();
  EXPECT_EQ(outc.str().size(), bytes.size() + 24 + 2 * n * k);
  // And the common prefix is byte-identical (the mandatory fields do not
  // know about compression).
  EXPECT_EQ(outc.str().compare(0, bytes.size(), bytes), 0);
}

TEST(Bf16Io, TruncatedTrailingSectionIsDataLoss) {
  const auto db = build_med_db(/*compressed=*/true);
  std::ostringstream out;
  ASSERT_TRUE(core::try_save_database(out, db).ok());
  std::string bytes = out.str();
  bytes.resize(bytes.size() - 7);  // chop mid-payload
  std::istringstream in(bytes);
  const auto loaded = core::try_load_database(in);
  EXPECT_FALSE(loaded.ok());
}

// --- ranking sanity ---------------------------------------------------------

TEST(Bf16Rank, TopResultMatchesFp64OnMed) {
  core::IndexOptions opts;
  opts.k = 10;
  auto fp64 = core::LsiIndex::try_build(data::med_topics(), opts).value();
  opts.compress_docs = true;
  auto bf16 = core::LsiIndex::try_build(data::med_topics(), opts).value();

  const std::string query = "the effects of drugs on children";
  const auto r64 = fp64.query(query);
  const auto r16 = bf16.query(query);
  ASSERT_FALSE(r64.empty());
  ASSERT_FALSE(r16.empty());
  // Quantization shifts cosines by O(2^-9) relative; the clear winner and
  // its score survive.
  EXPECT_EQ(r64.front().label, r16.front().label);
  EXPECT_NEAR(r64.front().cosine, r16.front().cosine, 1e-2);
}

}  // namespace
