// ConcurrentIndexer functional tests: snapshot visibility, pinning,
// consolidation, backpressure status mapping, shutdown semantics. The
// multi-thread race coverage lives in concurrent_stress_test.cpp (label
// "stress", run under ThreadSanitizer in CI).

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "lsi/batched_retrieval.hpp"
#include "lsi/concurrent.hpp"
#include "obs/trace.hpp"
#include "synth/corpus.hpp"

namespace {

using namespace lsi;

synth::SyntheticCorpus small_corpus(std::uint64_t seed) {
  synth::CorpusSpec spec;
  spec.topics = 4;
  spec.concepts_per_topic = 8;
  spec.docs_per_topic = 15;
  spec.queries_per_topic = 2;
  spec.seed = seed;
  return synth::generate_corpus(spec);
}

core::LsiIndex base_index(const synth::SyntheticCorpus& corpus,
                          std::size_t train) {
  text::Collection head(corpus.docs.begin(), corpus.docs.begin() + train);
  core::IndexOptions opts;
  opts.k = 12;
  return core::LsiIndex::try_build(head, opts).value();
}

TEST(Concurrent, BaseIndexServableBeforeAnyAdd) {
  auto corpus = small_corpus(1);
  core::ConcurrentIndexer indexer(base_index(corpus, 40));
  auto snap = indexer.snapshot();
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->generation(), 1u);
  EXPECT_EQ(snap->space().num_docs(), 40u);
  EXPECT_EQ(snap->doc_labels().size(), 40u);
  EXPECT_EQ(indexer.publishes(), 1u);

  auto results = snap->query(corpus.queries[0].text);
  EXPECT_FALSE(results.empty());
}

TEST(Concurrent, AddedDocumentVisibleAfterFlush) {
  auto corpus = small_corpus(2);
  core::ConcurrentIndexer indexer(base_index(corpus, 40));
  const auto& doc = corpus.docs[40];
  ASSERT_TRUE(indexer.add(doc).ok());
  indexer.flush();

  auto snap = indexer.snapshot();
  EXPECT_EQ(snap->space().num_docs(), 41u);
  EXPECT_EQ(snap->doc_labels().back(), doc.label);
  EXPECT_EQ(indexer.ingested(), 1u);
  EXPECT_GE(snap->generation(), 2u);

  // The document must be findable right away (fold-in semantics).
  auto results = snap->query(doc.body);
  bool found = false;
  for (std::size_t i = 0; i < 3 && i < results.size(); ++i) {
    found = found || results[i].label == doc.label;
  }
  EXPECT_TRUE(found);
}

TEST(Concurrent, SnapshotIsPinnedWhileWriterAdvances) {
  auto corpus = small_corpus(3);
  core::ConcurrentIndexer indexer(base_index(corpus, 40));
  auto old_snap = indexer.snapshot();
  const auto before = old_snap->query(corpus.queries[0].text);

  for (std::size_t d = 40; d < 50; ++d) {
    ASSERT_TRUE(indexer.add(corpus.docs[d]).ok());
  }
  indexer.flush();

  // The writer has moved on...
  auto new_snap = indexer.snapshot();
  EXPECT_EQ(new_snap->space().num_docs(), 50u);
  EXPECT_GT(new_snap->generation(), old_snap->generation());

  // ...but the pinned snapshot still answers bit-identically.
  EXPECT_EQ(old_snap->space().num_docs(), 40u);
  const auto after = old_snap->query(corpus.queries[0].text);
  ASSERT_EQ(after.size(), before.size());
  for (std::size_t i = 0; i < after.size(); ++i) {
    EXPECT_EQ(after[i].label, before[i].label);
    EXPECT_EQ(after[i].cosine, before[i].cosine);
    EXPECT_EQ(after[i].doc, before[i].doc);
  }
}

TEST(Concurrent, ConsolidationRestoresOrthogonality) {
  auto corpus = small_corpus(4);
  core::ConcurrentOptions opts;
  opts.consolidate_every = 0;  // manual only
  core::ConcurrentIndexer indexer(base_index(corpus, 30), opts);
  for (std::size_t d = 30; d < 50; ++d) {
    ASSERT_TRUE(indexer.add(corpus.docs[d]).ok());
  }
  indexer.flush();

  auto folded = indexer.snapshot();
  EXPECT_EQ(folded->unconsolidated(), 20u);
  EXPECT_GT(core::orthogonality_loss(folded->space().v), 1e-8);

  ASSERT_TRUE(indexer.consolidate().ok());
  auto consolidated = indexer.snapshot();
  EXPECT_EQ(consolidated->unconsolidated(), 0u);
  EXPECT_EQ(consolidated->space().num_docs(), 50u);
  EXPECT_LT(core::orthogonality_loss(consolidated->space().v), 1e-9);
  EXPECT_EQ(indexer.consolidations(), 1u);
}

TEST(Concurrent, AutomaticConsolidationFollowsBudget) {
  auto corpus = small_corpus(5);
  core::ConcurrentOptions opts;
  opts.consolidate_every = 5;
  core::ConcurrentIndexer indexer(base_index(corpus, 30), opts);
  for (std::size_t d = 30; d < 45; ++d) {
    ASSERT_TRUE(indexer.add(corpus.docs[d]).ok());
  }
  indexer.flush();
  EXPECT_EQ(indexer.consolidations(), 3u);
  EXPECT_EQ(indexer.snapshot()->space().num_docs(), 45u);
  EXPECT_EQ(indexer.snapshot()->unconsolidated(), 0u);
}

TEST(Concurrent, PublishedNormCachesAreWarm) {
  auto corpus = small_corpus(6);
  core::ConcurrentIndexer indexer(base_index(corpus, 40));
  ASSERT_TRUE(indexer.add(corpus.docs[40]).ok());
  indexer.flush();
  auto snap = indexer.snapshot();

  // Reading norms off a published snapshot must be a pure cache hit (the
  // lazy fill is not thread-safe; publish prewarms by construction).
  obs::Sink sink;
  obs::ScopedSink scoped(&sink);
  for (std::size_t m = 0; m < core::kNumSimilarityModes; ++m) {
    const auto& norms =
        snap->space().doc_norms(static_cast<core::SimilarityMode>(m));
    EXPECT_EQ(norms.size(), snap->space().num_docs());
  }
  std::uint64_t hits = 0, misses = 0;
  for (const auto& [name, value] : sink.metrics().counters()) {
    if (name == "retrieval.norm_cache.hit") hits = value;
    if (name == "retrieval.norm_cache.miss") misses = value;
  }
  EXPECT_EQ(hits, core::kNumSimilarityModes);
  EXPECT_EQ(misses, 0u);
}

TEST(Concurrent, ShutdownDrainsAcceptedDocuments) {
  auto corpus = small_corpus(7);
  auto indexer = std::make_unique<core::ConcurrentIndexer>(
      base_index(corpus, 40));
  for (std::size_t d = 40; d < 48; ++d) {
    ASSERT_TRUE(indexer->add(corpus.docs[d]).ok());
  }
  indexer->shutdown();

  EXPECT_EQ(indexer->ingested(), 8u);
  auto snap = indexer->snapshot();
  EXPECT_EQ(snap->space().num_docs(), 48u);

  // After shutdown every mutation path reports FailedPrecondition.
  EXPECT_EQ(indexer->add(corpus.docs[48]).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(indexer->try_add(corpus.docs[48]).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(indexer->consolidate().code(), StatusCode::kFailedPrecondition);
  // Reads keep working (snapshots are immutable).
  EXPECT_FALSE(snap->query(corpus.queries[0].text).empty());
}

TEST(Concurrent, BatchedRetrieverPinsSnapshotSpace) {
  auto corpus = small_corpus(8);
  core::ConcurrentIndexer indexer(base_index(corpus, 40));
  auto snap = indexer.snapshot();

  std::vector<la::Vector> weighted;
  for (std::size_t q = 0; q < 4; ++q) {
    weighted.push_back(
        snap->context().weighted_term_vector(corpus.queries[q].text));
  }
  const auto batch =
      core::QueryBatch::from_term_vectors(snap->space(), weighted);
  core::BatchedRetriever pinned(snap->space_ptr());

  // Writer advances; the pinned retriever must keep using the old space.
  for (std::size_t d = 40; d < 46; ++d) {
    ASSERT_TRUE(indexer.add(corpus.docs[d]).ok());
  }
  indexer.flush();

  const auto ranked = pinned.rank(batch);
  ASSERT_EQ(ranked.size(), 4u);
  for (std::size_t b = 0; b < ranked.size(); ++b) {
    const auto single = snap->retrieve(weighted[b]);
    ASSERT_EQ(ranked[b].size(), single.size());
    for (std::size_t i = 0; i < single.size(); ++i) {
      EXPECT_EQ(ranked[b][i].doc, single[i].doc);
      EXPECT_EQ(ranked[b][i].cosine, single[i].cosine);
      EXPECT_LT(ranked[b][i].doc, snap->space().num_docs());
    }
  }
}

}  // namespace
