// Nearest-centroid classification tests (the Section 5.7 extension).

#include <gtest/gtest.h>

#include "lsi/classify.hpp"
#include "lsi/lsi_index.hpp"
#include "synth/corpus.hpp"

namespace {

using namespace lsi;

TEST(CentroidClassifier, SeparableTwoClass) {
  std::vector<la::Vector> features = {
      {1.0, 0.0}, {0.9, 0.1}, {0.0, 1.0}, {0.1, 0.9}};
  std::vector<std::size_t> labels = {0, 0, 1, 1};
  core::CentroidClassifier clf(features, labels, 2);
  EXPECT_EQ(clf.num_classes(), 2u);
  EXPECT_EQ(clf.predict(la::Vector{1.0, 0.2}), 0u);
  EXPECT_EQ(clf.predict(la::Vector{0.2, 1.0}), 1u);
  EXPECT_DOUBLE_EQ(classification_accuracy(clf, features, labels), 1.0);
}

TEST(CentroidClassifier, ScoresAreCosines) {
  std::vector<la::Vector> features = {{1.0, 0.0}, {0.0, 1.0}};
  std::vector<std::size_t> labels = {0, 1};
  core::CentroidClassifier clf(features, labels, 2);
  auto scores = clf.scores(la::Vector{1.0, 0.0});
  ASSERT_EQ(scores.size(), 2u);
  EXPECT_NEAR(scores[0], 1.0, 1e-12);
  EXPECT_NEAR(scores[1], 0.0, 1e-12);
}

TEST(CentroidClassifier, EmptyClassYieldsZeroScore) {
  std::vector<la::Vector> features = {{1.0, 0.0}};
  std::vector<std::size_t> labels = {0};
  core::CentroidClassifier clf(features, labels, 3);  // classes 1,2 empty
  auto scores = clf.scores(la::Vector{1.0, 0.0});
  EXPECT_NEAR(scores[1], 0.0, 1e-12);
  EXPECT_NEAR(scores[2], 0.0, 1e-12);
  EXPECT_EQ(clf.predict(la::Vector{1.0, 0.0}), 0u);
}

TEST(LsiClassification, TopicsClassifiedOnLsiDimensions) {
  // Hull / Yang & Chute style: train a centroid classifier on the LSI
  // coordinates of half the corpus; test on the other half.
  synth::CorpusSpec spec;
  spec.topics = 5;
  spec.concepts_per_topic = 8;
  spec.docs_per_topic = 24;
  spec.own_topic_prob = 0.75;
  spec.general_prob = 0.4;
  spec.seed = 77;
  spec.consistent_forms_per_doc = true;
  auto corpus = synth::generate_corpus(spec);

  core::IndexOptions opts;
  opts.k = 20;
  auto index = core::LsiIndex::try_build(corpus.docs, opts).value();

  std::vector<la::Vector> train_x, test_x;
  std::vector<std::size_t> train_y, test_y;
  for (std::size_t d = 0; d < corpus.docs.size(); ++d) {
    la::Vector coords = index.space().doc_coords(d);
    if (d % 2 == 0) {
      train_x.push_back(std::move(coords));
      train_y.push_back(corpus.doc_topics[d]);
    } else {
      test_x.push_back(std::move(coords));
      test_y.push_back(corpus.doc_topics[d]);
    }
  }
  core::CentroidClassifier clf(train_x, train_y, spec.topics);
  const double acc = classification_accuracy(clf, test_x, test_y);
  EXPECT_GT(acc, 0.8);  // well above 1/5 chance
}

TEST(LsiClassification, ReducedDimensionsCompetitiveWithFullSpace) {
  // The Section 5.7 point: ~20 LSI dimensions carry the class signal that
  // the full (hundreds-of-terms) space carries.
  synth::CorpusSpec spec;
  spec.topics = 4;
  spec.concepts_per_topic = 8;
  spec.docs_per_topic = 20;
  spec.own_topic_prob = 0.7;
  spec.seed = 78;
  auto corpus = synth::generate_corpus(spec);

  core::IndexOptions opts;
  opts.k = 16;
  auto index = core::LsiIndex::try_build(corpus.docs, opts).value();

  // LSI features.
  std::vector<la::Vector> lsi_train, lsi_test;
  // Full weighted term-vector features.
  std::vector<la::Vector> full_train, full_test;
  std::vector<std::size_t> train_y, test_y;
  const auto dense = index.weighted_matrix().to_dense();
  for (std::size_t d = 0; d < corpus.docs.size(); ++d) {
    la::Vector full = dense.col(d).size()
                          ? la::Vector(dense.col(d).begin(),
                                       dense.col(d).end())
                          : la::Vector{};
    if (d % 2 == 0) {
      lsi_train.push_back(index.space().doc_coords(d));
      full_train.push_back(std::move(full));
      train_y.push_back(corpus.doc_topics[d]);
    } else {
      lsi_test.push_back(index.space().doc_coords(d));
      full_test.push_back(std::move(full));
      test_y.push_back(corpus.doc_topics[d]);
    }
  }
  core::CentroidClassifier lsi_clf(lsi_train, train_y, spec.topics);
  core::CentroidClassifier full_clf(full_train, train_y, spec.topics);
  const double lsi_acc = classification_accuracy(lsi_clf, lsi_test, test_y);
  const double full_acc =
      classification_accuracy(full_clf, full_test, test_y);
  EXPECT_GT(lsi_acc, 0.7);
  EXPECT_GE(lsi_acc, full_acc - 0.1);  // within 10 points of full space
}

}  // namespace
