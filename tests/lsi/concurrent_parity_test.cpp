// Property tests for the concurrent indexer's determinism contract
// (concurrent.hpp header comment): with a single producer, the fold /
// consolidate / publish sequence is *bit-identical* to running the
// sequential IncrementalIndexer with the same consolidation budget — even
// while reader threads hammer snapshots the whole time. Also asserts the
// batched-vs-single retrieval parity on pinned snapshots across seeds.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "lsi/batched_retrieval.hpp"
#include "lsi/concurrent.hpp"
#include "synth/corpus.hpp"

namespace {

using namespace lsi;

struct ParityCase {
  std::uint64_t seed;
  std::size_t consolidate_every;
  bool exact_update;
};

synth::SyntheticCorpus parity_corpus(std::uint64_t seed) {
  synth::CorpusSpec spec;
  spec.topics = 5;
  spec.concepts_per_topic = 8;
  spec.docs_per_topic = 16;
  spec.queries_per_topic = 2;
  spec.consistent_forms_per_doc = true;
  spec.seed = seed;
  return synth::generate_corpus(spec);
}

void expect_bit_identical(const core::SemanticSpace& a,
                          const core::SemanticSpace& b) {
  ASSERT_EQ(a.k(), b.k());
  ASSERT_EQ(a.num_terms(), b.num_terms());
  ASSERT_EQ(a.num_docs(), b.num_docs());
  for (la::index_t j = 0; j < a.k(); ++j) {
    EXPECT_EQ(a.sigma[j], b.sigma[j]) << "sigma[" << j << "]";
    const auto ua = a.u.col(j), ub = b.u.col(j);
    for (la::index_t i = 0; i < a.num_terms(); ++i) {
      ASSERT_EQ(ua[i], ub[i]) << "u(" << i << "," << j << ")";
    }
    const auto va = a.v.col(j), vb = b.v.col(j);
    for (la::index_t i = 0; i < a.num_docs(); ++i) {
      ASSERT_EQ(va[i], vb[i]) << "v(" << i << "," << j << ")";
    }
  }
}

class ConcurrentParity : public ::testing::TestWithParam<ParityCase> {};

// Single producer + the same consolidation budget => the concurrently
// published space equals the sequential IncrementalIndexer's result bit for
// bit, with concurrent readers running the whole time (reads must not
// perturb writes).
TEST_P(ConcurrentParity, MatchesSequentialFoldAndConsolidate) {
  const ParityCase& pc = GetParam();
  auto corpus = parity_corpus(pc.seed);
  const std::size_t train = corpus.docs.size() / 2;

  core::IndexOptions iopts;
  iopts.k = 14;
  text::Collection head(corpus.docs.begin(), corpus.docs.begin() + train);
  auto base = core::LsiIndex::try_build(head, iopts).value();

  // Sequential reference: same base index, same budget, same arrival order.
  core::IncrementalOptions seq_opts;
  seq_opts.consolidate_every = pc.consolidate_every;
  seq_opts.exact_update = pc.exact_update;
  core::IncrementalIndexer sequential(base, seq_opts);  // copies the index
  for (std::size_t d = train; d < corpus.docs.size(); ++d) {
    sequential.add(corpus.docs[d]);
  }

  // Concurrent run: one producer, two readers querying snapshots throughout.
  core::ConcurrentOptions copts;
  copts.consolidate_every = pc.consolidate_every;
  copts.exact_update = pc.exact_update;
  copts.max_batch = 4;
  copts.queue_capacity = 8;
  core::ConcurrentIndexer indexer(std::move(base), copts);

  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&, r] {
      std::size_t q = static_cast<std::size_t>(r);
      while (!stop.load(std::memory_order_acquire)) {
        auto snap = indexer.snapshot();
        auto results =
            snap->query(corpus.queries[q % corpus.queries.size()].text);
        for (const auto& hit : results) {
          // Internal consistency: a snapshot never mixes generations.
          ASSERT_LT(hit.doc, snap->space().num_docs());
          ASSERT_EQ(snap->doc_labels().size(), snap->space().num_docs());
        }
        ++q;
      }
    });
  }
  for (std::size_t d = train; d < corpus.docs.size(); ++d) {
    ASSERT_TRUE(indexer.add(corpus.docs[d]).ok());
  }
  indexer.flush();
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();

  auto snap = indexer.snapshot();
  expect_bit_identical(snap->space(), sequential.index().space());
  EXPECT_EQ(snap->doc_labels(), sequential.index().doc_labels());
  EXPECT_EQ(snap->unconsolidated(), sequential.pending());
  EXPECT_EQ(indexer.consolidations(), sequential.consolidations());

  // Rankings over the final generation are bit-identical too.
  for (const auto& query : corpus.queries) {
    const auto concurrent_hits = snap->query(query.text);
    const auto sequential_hits = sequential.index().query(query.text);
    ASSERT_EQ(concurrent_hits.size(), sequential_hits.size());
    for (std::size_t i = 0; i < concurrent_hits.size(); ++i) {
      EXPECT_EQ(concurrent_hits[i].doc, sequential_hits[i].doc);
      EXPECT_EQ(concurrent_hits[i].label, sequential_hits[i].label);
      EXPECT_EQ(concurrent_hits[i].cosine, sequential_hits[i].cosine);
    }
  }
}

// Batched retrieval pinned to a snapshot returns exactly what one-at-a-time
// retrieval over the same snapshot returns (the batched engine's bit-parity
// guarantee, exercised here through the concurrent surface).
TEST_P(ConcurrentParity, BatchedMatchesSingleQueryOnSnapshot) {
  const ParityCase& pc = GetParam();
  auto corpus = parity_corpus(pc.seed + 1000);
  const std::size_t train = (3 * corpus.docs.size()) / 4;

  core::IndexOptions iopts;
  iopts.k = 14;
  text::Collection head(corpus.docs.begin(), corpus.docs.begin() + train);
  core::ConcurrentOptions copts;
  copts.consolidate_every = pc.consolidate_every;
  core::ConcurrentIndexer indexer(
      core::LsiIndex::try_build(head, iopts).value(), copts);
  for (std::size_t d = train; d < corpus.docs.size(); ++d) {
    ASSERT_TRUE(indexer.add(corpus.docs[d]).ok());
  }
  indexer.flush();
  auto snap = indexer.snapshot();

  std::vector<la::Vector> weighted;
  for (const auto& query : corpus.queries) {
    weighted.push_back(snap->context().weighted_term_vector(query.text));
  }
  core::BatchedRetriever batched(snap->space_ptr());
  const auto ranked = batched.rank(
      core::QueryBatch::from_term_vectors(snap->space(), weighted));
  ASSERT_EQ(ranked.size(), weighted.size());
  for (std::size_t b = 0; b < ranked.size(); ++b) {
    const auto single = snap->retrieve(weighted[b]);
    ASSERT_EQ(ranked[b].size(), single.size()) << "query " << b;
    for (std::size_t i = 0; i < single.size(); ++i) {
      EXPECT_EQ(ranked[b][i].doc, single[i].doc);
      EXPECT_EQ(ranked[b][i].cosine, single[i].cosine);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, ConcurrentParity,
    ::testing::Values(ParityCase{101, 6, false}, ParityCase{202, 10, false},
                      ParityCase{303, 4, true},
                      ParityCase{404, 0, false}),  // 0 = never consolidate
    [](const ::testing::TestParamInfo<ParityCase>& param_info) {
      return "seed" + std::to_string(param_info.param.seed) + "_budget" +
             std::to_string(param_info.param.consolidate_every) +
             (param_info.param.exact_update ? "_exact" : "_approx");
    });

}  // namespace
