// Additional coverage across the core API: database round-trips with
// weighting metadata, similarity-mode behaviour, retrieval option
// combinations, and the Section 4.5 animation claim about M16.

#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "data/med_topics.hpp"
#include "lsi/folding.hpp"
#include "lsi/io.hpp"
#include "lsi/lsi_index.hpp"
#include "lsi/retrieval.hpp"
#include "lsi/update.hpp"

namespace {

using namespace lsi;
using core::index_t;
using core::QueryOptions;
using core::SimilarityMode;

core::SemanticSpace paper_space(index_t k = 2) {
  auto space = core::try_build_semantic_space(data::table3_counts(), k).value();
  core::align_signs_to(space, data::figure5_u2());
  return space;
}

la::Vector paper_query_raw() {
  la::Vector q(18, 0.0);
  q[0] = q[1] = q[3] = 1.0;
  return q;
}

TEST(IoV2, RoundTripsWeightingMetadata) {
  core::IndexOptions opts;
  opts.parser.min_document_frequency = 2;
  opts.scheme = weighting::kLogEntropy;
  opts.k = 3;
  auto index = core::LsiIndex::try_build(data::med_topics(), opts).value();
  core::LsiDatabase db{index.space(), index.vocabulary(),
                       index.doc_labels(), index.options().scheme,
                       index.global_weights()};
  std::stringstream buffer;
  core::try_save_database(buffer, db).or_throw();
  auto loaded = core::try_load_database(buffer).value();
  EXPECT_EQ(loaded.scheme.local, weighting::LocalWeight::kLog);
  EXPECT_EQ(loaded.scheme.global, weighting::GlobalWeight::kEntropy);
  ASSERT_EQ(loaded.global_weights.size(), index.global_weights().size());
  for (std::size_t i = 0; i < loaded.global_weights.size(); ++i) {
    EXPECT_DOUBLE_EQ(loaded.global_weights[i], index.global_weights()[i]);
  }
}

TEST(IoV2, DefaultSchemeRoundTrips) {
  core::LsiDatabase db;
  db.space = paper_space(2);
  db.vocabulary = text::Vocabulary(data::table3_terms());
  std::stringstream buffer;
  core::try_save_database(buffer, db).or_throw();
  auto loaded = core::try_load_database(buffer).value();
  EXPECT_EQ(loaded.scheme.local, weighting::LocalWeight::kRawTf);
  EXPECT_TRUE(loaded.global_weights.empty());
}

TEST(SimilarityModes, AllProduceValidRankings) {
  auto space = paper_space(4);
  const auto q_hat = core::project_query(space, paper_query_raw());
  for (auto mode : {SimilarityMode::kColumnSpace, SimilarityMode::kProjected,
                    SimilarityMode::kPlainV}) {
    QueryOptions opts;
    opts.mode = mode;
    auto ranked = core::rank_documents(space, q_hat, opts);
    EXPECT_EQ(ranked.size(), 14u);
    for (std::size_t i = 1; i < ranked.size(); ++i) {
      EXPECT_LE(ranked[i].cosine, ranked[i - 1].cosine + 1e-12);
    }
    for (const auto& sd : ranked) {
      EXPECT_LE(std::abs(sd.cosine), 1.0 + 1e-12);
    }
  }
}

TEST(SimilarityModes, ModesActuallyDiffer) {
  auto space = paper_space(4);
  const auto q_hat = core::project_query(space, paper_query_raw());
  QueryOptions a, b;
  a.mode = SimilarityMode::kColumnSpace;
  b.mode = SimilarityMode::kPlainV;
  auto ra = core::rank_documents(space, q_hat, a);
  auto rb = core::rank_documents(space, q_hat, b);
  bool any_diff = false;
  for (std::size_t i = 0; i < ra.size(); ++i) {
    any_diff = any_diff || ra[i].doc != rb[i].doc ||
               std::abs(ra[i].cosine - rb[i].cosine) > 1e-9;
  }
  EXPECT_TRUE(any_diff);
}

TEST(QueryOptionsCombos, ThresholdAndTopZCompose) {
  auto space = paper_space(2);
  const auto q_hat = core::project_query(space, paper_query_raw());
  QueryOptions opts;
  opts.min_cosine = 0.5;
  opts.top_z = 3;
  auto ranked = core::rank_documents(space, q_hat, opts);
  EXPECT_LE(ranked.size(), 3u);
  for (const auto& sd : ranked) EXPECT_GE(sd.cosine, 0.5);
  // Threshold of 2.0 is unreachable: empty result, no crash.
  opts.min_cosine = 2.0;
  EXPECT_TRUE(core::rank_documents(space, q_hat, opts).empty());
}

TEST(Section45, UpdatingMovesM16TowardItsTermCentroid) {
  // The video narration: "SVD-updating appropriately moves the medical
  // topic M16 to the centroid of the term vectors corresponding to
  // depressed, patients, pressure, and fast." Compare the angle between
  // M16 and that term centroid under folding vs updating.
  const index_t depressed = 6, patients = 12, pressure = 13, fast = 9;

  auto folded = paper_space(2);
  core::fold_in_documents(folded, data::update_document_columns());
  auto updated = paper_space(2);
  core::update_documents(updated, data::update_document_columns());

  auto m16_vs_centroid = [&](const core::SemanticSpace& s) {
    la::Vector centroid(s.k(), 0.0);
    for (index_t t : {depressed, patients, pressure, fast}) {
      const auto coords = s.term_coords(t);
      for (index_t i = 0; i < s.k(); ++i) centroid[i] += coords[i] / 4.0;
    }
    const auto m16 = s.doc_coords(15);
    return la::cosine(m16, centroid);
  };
  EXPECT_GE(m16_vs_centroid(updated), m16_vs_centroid(folded) - 1e-9);
  EXPECT_GT(m16_vs_centroid(updated), 0.9);
}

TEST(RankTerms, QueryCanReturnTermsLikeAThesaurus) {
  // Section 5.4: "there is no reason that similar terms could not be
  // returned". Terms near the projected query "age blood abnormalities"
  // must include its own constituent terms.
  auto space = paper_space(2);
  la::Vector q_hat = core::project_query(space, paper_query_raw());
  // Scale into term-coordinate space (U S) for comparison against terms.
  for (index_t i = 0; i < space.k(); ++i) q_hat[i] *= space.sigma[i];
  auto terms = core::rank_terms(space, q_hat, 6);
  ASSERT_EQ(terms.size(), 6u);
  std::set<std::string> names;
  for (const auto& sd : terms) names.insert(data::table3_terms()[sd.doc]);
  EXPECT_TRUE(names.count("age") || names.count("blood") ||
              names.count("abnormalities") || names.count("respect"));
}

TEST(FoldThenUpdate, MixedIngestKeepsShapesConsistent) {
  auto index = core::LsiIndex::try_build(data::med_topics(), [] {
    core::IndexOptions opts;
    opts.parser.min_document_frequency = 2;
    opts.parser.fold_plurals = true;
    opts.scheme = weighting::kRaw;
    opts.k = 2;
    return opts;
  }()).value();
  index.add_documents({data::med_update_topics()[0]},
                      core::AddMethod::kFoldIn);
  index.add_documents({data::med_update_topics()[1]},
                      core::AddMethod::kSvdUpdate);
  EXPECT_EQ(index.space().num_docs(), 16u);
  EXPECT_EQ(index.doc_labels().size(), 16u);
  EXPECT_EQ(index.doc_labels()[15], "M16");
  auto results = index.query("depressed patients pressure fast");
  EXPECT_FALSE(results.empty());
}

TEST(QueryVector, MatchesTextQuery) {
  core::IndexOptions opts;
  opts.parser.min_document_frequency = 2;
  opts.parser.fold_plurals = true;
  opts.scheme = weighting::kRaw;
  opts.k = 2;
  auto index = core::LsiIndex::try_build(data::med_topics(), opts).value();
  auto by_text = index.query(data::kQueryText);
  auto by_vector = index.query_vector(paper_query_raw());
  ASSERT_EQ(by_text.size(), by_vector.size());
  for (std::size_t i = 0; i < by_text.size(); ++i) {
    EXPECT_EQ(by_text[i].doc, by_vector[i].doc);
    EXPECT_NEAR(by_text[i].cosine, by_vector[i].cosine, 1e-12);
  }
}

}  // namespace
