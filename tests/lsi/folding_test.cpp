// Folding-in tests (Equations 7-8 and the Section 4.3 orthogonality story).

#include <gtest/gtest.h>

#include <cmath>

#include "data/med_topics.hpp"
#include "lsi/folding.hpp"
#include "lsi/retrieval.hpp"
#include "synth/sparse_random.hpp"

namespace {

using namespace lsi;
using core::SemanticSpace;

TEST(FoldDocuments, AppendsRowsToV) {
  auto a = synth::random_sparse_matrix(20, 12, 0.3, 1);
  auto space = core::try_build_semantic_space(a, 4).value();
  auto d = synth::random_sparse_matrix(20, 3, 0.3, 2);
  fold_in_documents(space, d);
  EXPECT_EQ(space.num_docs(), 15u);
  EXPECT_EQ(space.num_terms(), 20u);
  EXPECT_EQ(space.k(), 4u);
}

TEST(FoldDocuments, ExistingCoordinatesUntouched) {
  auto a = synth::random_sparse_matrix(18, 10, 0.3, 3);
  auto space = core::try_build_semantic_space(a, 5).value();
  const auto v_before = space.v;
  fold_in_documents(space, synth::random_sparse_matrix(18, 4, 0.3, 4));
  for (core::index_t j = 0; j < 5; ++j) {
    for (core::index_t i = 0; i < 10; ++i) {
      EXPECT_DOUBLE_EQ(space.v(i, j), v_before(i, j));
    }
  }
}

TEST(FoldDocuments, MatchesEquation7) {
  // The folded row must equal d^T U_k S_k^{-1} exactly.
  auto a = synth::random_sparse_matrix(16, 9, 0.4, 5);
  auto space = core::try_build_semantic_space(a, 3).value();
  la::DenseMatrix d(16, 1);
  for (core::index_t i = 0; i < 16; ++i) d(i, 0) = std::sin(1.0 + i);
  fold_in_documents(space, d);
  const auto expect = core::project_query(space, d.col(0));
  for (core::index_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(space.v(9, i), expect[i], 1e-12);
  }
}

TEST(FoldDocuments, RefoldingTrainingDocumentLandsOnItsRow) {
  // With a full-rank space, folding in column j of A reproduces V's row j.
  auto a = synth::random_sparse_matrix(14, 8, 0.5, 6);
  auto space = core::try_build_semantic_space(a, 8).value();
  la::DenseMatrix col(14, 1);
  const auto dense = a.to_dense();
  for (core::index_t i = 0; i < 14; ++i) col(i, 0) = dense(i, 2);
  fold_in_documents(space, col);
  for (core::index_t i = 0; i < space.k(); ++i) {
    EXPECT_NEAR(space.v(8, i), space.v(2, i), 1e-9);
  }
}

TEST(FoldTerms, AppendsRowsToU) {
  auto a = synth::random_sparse_matrix(20, 12, 0.3, 7);
  auto space = core::try_build_semantic_space(a, 4).value();
  auto t = synth::random_sparse_matrix(2, 12, 0.3, 8);
  fold_in_terms(space, t);
  EXPECT_EQ(space.num_terms(), 22u);
  EXPECT_EQ(space.num_docs(), 12u);
}

TEST(FoldTerms, MatchesEquation8) {
  auto a = synth::random_sparse_matrix(10, 11, 0.4, 9);
  auto space = core::try_build_semantic_space(a, 3).value();
  la::DenseMatrix t(1, 11);
  for (core::index_t j = 0; j < 11; ++j) t(0, j) = std::cos(2.0 + j);
  fold_in_terms(space, t);
  const auto expect = core::project_term(space, t.row(0));
  for (core::index_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(space.u(10, i), expect[i], 1e-12);
  }
}

TEST(Folding, PaperTopicsM15M16) {
  // Fold the Table 5 topics into the paper's k=2 space. M16 ("depressed
  // patients ... pressure to fast") mixes both clusters; M15 (rats/rise/
  // oestrogen/behavior) leans to the hormone-behavior side. The key
  // qualitative claim (Section 3.4): folding-in fails to pull M15 into the
  // {M13, M14} rats cluster because the old structure cannot move.
  auto space = core::try_build_semantic_space(data::table3_counts(), 2).value();
  core::align_signs_to(space, data::figure5_u2());
  fold_in_documents(space, data::update_document_columns());
  ASSERT_EQ(space.num_docs(), 16u);
  // Old coordinates frozen:
  auto space0 = core::try_build_semantic_space(data::table3_counts(), 2).value();
  core::align_signs_to(space0, data::figure5_u2());
  for (core::index_t j = 0; j < 2; ++j) {
    for (core::index_t i = 0; i < 14; ++i) {
      EXPECT_DOUBLE_EQ(space.v(i, j), space0.v(i, j));
    }
  }
  // M15 must NOT be as close to M13/M14 as those are to each other.
  const double m13_m14 = core::document_similarity(space, 12, 13);
  const double m15_m13 = core::document_similarity(space, 14, 12);
  EXPECT_GT(m13_m14, m15_m13);
}

TEST(Folding, OrthogonalityLossGrowsWithFoldedDocs) {
  auto a = synth::random_sparse_matrix(40, 25, 0.15, 10);
  auto space = core::try_build_semantic_space(a, 6).value();
  const double loss0 = core::orthogonality_loss(space.v);
  EXPECT_LT(loss0, 1e-9);
  double prev = loss0;
  for (int batch = 0; batch < 3; ++batch) {
    fold_in_documents(space,
                      synth::random_sparse_matrix(40, 10, 0.15, 20 + batch));
    const double loss = core::orthogonality_loss(space.v);
    EXPECT_GE(loss, prev - 1e-12);
    prev = loss;
  }
  EXPECT_GT(prev, 1e-6);  // folding genuinely corrupts orthogonality
}

}  // namespace
