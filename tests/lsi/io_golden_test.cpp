// Golden-file regression test for the persistence format: a database built
// once (tests/data/README.md records how) and committed as
// tests/data/golden_k5.lsidb must keep loading, must survive a
// load -> save round trip byte for byte, and must keep producing the same
// top-10 ranking for a fixed query. Any change to the binary format, the
// float encoding, or the retrieval math that breaks compatibility with
// shipped databases fails here first.
//
// If the format version is bumped *intentionally*, regenerate the fixture
// (see tests/data/README.md) and update the constants below in the same
// commit — that diff is the reviewable statement "this PR breaks database
// compatibility".

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lsi/concurrent.hpp"
#include "lsi/io.hpp"
#include "lsi/retrieval.hpp"

namespace {

using namespace lsi;

constexpr const char* kFixture = LSI_TEST_DATA_DIR "/golden_k5.lsidb";

// The fixed query and its expected ranking over the fixture database.
constexpr const char* kGoldenQuery = "w0f0 w3f2 w4f1 w5f2 w1f0";
struct GoldenHit {
  const char* label;
  double cosine;
};
constexpr GoldenHit kGoldenTop10[] = {
    {"D6", 0.9944549806254531},  {"D11", 0.9936944766436764},
    {"D5", 0.9905035612220732},  {"D8", 0.9893534664692869},
    {"D1", 0.9869792882136037},  {"D2", 0.9854356736096550},
    {"D7", 0.9847863636920019},  {"D10", 0.9822595232441116},
    {"D3", 0.9767941498402996},  {"D9", 0.9739770750712671},
};

std::string read_file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(IoGolden, FixtureLoadsWithExpectedShape) {
  auto db = core::try_load_database_file(kFixture).value();
  EXPECT_EQ(db.space.k(), 5u);
  EXPECT_EQ(db.space.num_terms(), 144u);
  EXPECT_EQ(db.space.num_docs(), 36u);
  EXPECT_EQ(db.vocabulary.size(), 144u);
  ASSERT_EQ(db.doc_labels.size(), 36u);
  EXPECT_EQ(db.doc_labels.front(), "D0");
  EXPECT_EQ(db.doc_labels.back(), "D35");
  EXPECT_EQ(db.global_weights.size(), 144u);
}

TEST(IoGolden, RoundTripIsByteForByteIdentical) {
  const std::string golden = read_file_bytes(kFixture);
  ASSERT_FALSE(golden.empty());

  std::istringstream in(golden);
  auto db = core::try_load_database(in).value();

  std::ostringstream out;
  ASSERT_TRUE(core::try_save_database(out, db).ok());
  const std::string resaved = out.str();
  ASSERT_EQ(resaved.size(), golden.size());
  EXPECT_TRUE(resaved == golden) << "save(load(x)) != x";

  // Second generation too: the format is a fixed point of load/save.
  std::istringstream in2(resaved);
  auto db2 = core::try_load_database(in2).value();
  std::ostringstream out2;
  ASSERT_TRUE(core::try_save_database(out2, db2).ok());
  EXPECT_TRUE(out2.str() == golden);
}

TEST(IoGolden, KnownQueryKeepsItsTop10) {
  auto db = core::try_load_database_file(kFixture).value();

  // Weight the query exactly like a serving process would after reload: the
  // database carries the scheme and per-term global weights.
  const core::SnapshotQueryContext ctx(db.vocabulary, text::ParserOptions{},
                                       db.scheme, db.global_weights);
  const la::Vector w = ctx.weighted_term_vector(kGoldenQuery);

  core::QueryOptions opts;
  opts.top_z = 10;
  const auto hits = core::retrieve(db.space, w, opts);
  ASSERT_EQ(hits.size(), 10u);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(db.doc_labels[hits[i].doc], kGoldenTop10[i].label)
        << "rank " << i;
    EXPECT_NEAR(hits[i].cosine, kGoldenTop10[i].cosine, 1e-9) << "rank " << i;
  }
}

TEST(IoGolden, TruncatedFixtureFailsWithDataLoss) {
  const std::string golden = read_file_bytes(kFixture);
  std::istringstream in(golden.substr(0, golden.size() / 2));
  auto result = core::try_load_database(in);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDataLoss);
}

}  // namespace
