// ShardedIndex::pin_snapshot regression tests: the refcounted read-view
// handle that lets a serving session outlive consolidation (and even the
// index itself) without ever dereferencing a retired snapshot. The headline
// scenario — a session pages a ranking while consolidation retires every
// shard snapshot underneath it — is the bug class this API exists to kill.

#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <vector>

#include "lsi/lsi.hpp"
#include "synth/corpus.hpp"

namespace {

using namespace lsi;

synth::SyntheticCorpus small_corpus(std::uint64_t seed) {
  synth::CorpusSpec spec;
  spec.topics = 3;
  spec.concepts_per_topic = 5;
  spec.docs_per_topic = 16;  // 48 docs
  spec.queries_per_topic = 2;
  spec.seed = seed;
  return synth::generate_corpus(spec);
}

core::ShardedIndex build_index(const text::Collection& docs) {
  core::ShardingOptions sopts;
  sopts.num_shards = 2;
  sopts.index.k = 8;
  sopts.concurrent.queue_capacity = 64;
  auto built = core::ShardedIndex::try_build(docs, sopts);
  EXPECT_TRUE(built.ok()) << built.status().to_string();
  return std::move(*built);
}

TEST(ShardedPin, CountsHandlesAndSharedCopies) {
  auto corpus = small_corpus(11);
  core::ShardedIndex index = build_index(corpus.docs);
  EXPECT_EQ(index.pinned(), 0u);

  auto pin_a = index.pin_snapshot();
  EXPECT_EQ(index.pinned(), 1u);
  auto pin_b = index.pin_snapshot();
  EXPECT_EQ(index.pinned(), 2u);

  // Copies of one handle share one pin: only the last drop releases it.
  auto pin_a2 = pin_a;
  EXPECT_EQ(index.pinned(), 2u);
  pin_a.reset();
  EXPECT_EQ(index.pinned(), 2u);
  pin_a2.reset();
  EXPECT_EQ(index.pinned(), 1u);
  pin_b.reset();
  EXPECT_EQ(index.pinned(), 0u);
}

TEST(ShardedPin, PagingSurvivesConsolidationUnderneath) {
  auto corpus = small_corpus(22);
  core::ShardedIndex index = build_index(corpus.docs);

  // The "session": pin a view and rank once, to be paged out in slices.
  auto pin = index.pin_snapshot();
  const auto pinned_gens = pin->generations();
  core::SearchOptions qopts;
  qopts.z = 20;
  const std::string query = corpus.queries.front().text;
  const auto full = pin->retrieve(query, qopts);
  ASSERT_GE(full.size(), 8u);

  // Page 1 read before the consolidation.
  std::vector<core::ScoredDoc> page1(full.begin(), full.begin() + 4);

  // Meanwhile: ingest + consolidate retires and republishes every shard
  // snapshot (generations advance).
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(index.add({"late" + std::to_string(i),
                           corpus.docs[i % corpus.docs.size()].body})
                    .ok());
  }
  index.flush();
  ASSERT_TRUE(index.consolidate().ok());
  const auto fresh_gens = index.snapshot().generations();
  ASSERT_NE(fresh_gens, pinned_gens);

  // Page 2 ranks against the SAME pinned view: identical generations,
  // identical ranking — the retired snapshots are still fully alive.
  EXPECT_EQ(pin->generations(), pinned_gens);
  const auto replay = pin->retrieve(query, qopts);
  ASSERT_EQ(replay.size(), full.size());
  for (std::size_t i = 0; i < full.size(); ++i) {
    EXPECT_EQ(replay[i].doc, full[i].doc) << i;
    EXPECT_DOUBLE_EQ(replay[i].cosine, full[i].cosine) << i;
  }
  std::vector<core::ScoredDoc> page2(replay.begin() + 4, replay.begin() + 8);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(page2[i].doc, full[i + 4].doc);  // stable cursor continuation
  }

  // The current view does include the late documents (ids past the build).
  qopts.z = 0;
  const auto now = index.snapshot().retrieve(query, qopts);
  EXPECT_GT(now.size(), full.size());
}

TEST(ShardedPin, HandleOutlivesTheIndexItself) {
  auto corpus = small_corpus(33);
  std::shared_ptr<const core::ShardedSnapshot> pin;
  std::vector<core::ScoredDoc> before;
  const std::string query = corpus.queries.front().text;
  core::SearchOptions qopts;
  qopts.z = 5;
  {
    std::optional<core::ShardedIndex> index(build_index(corpus.docs));
    pin = index->pin_snapshot();
    before = pin->retrieve(query, qopts);
    index->shutdown();
    index.reset();  // the index is GONE; the pin must not care
  }
  const auto after = pin->retrieve(query, qopts);
  ASSERT_EQ(after.size(), before.size());
  for (std::size_t i = 0; i < after.size(); ++i) {
    EXPECT_EQ(after[i].doc, before[i].doc);
    EXPECT_DOUBLE_EQ(after[i].cosine, before[i].cosine);
  }
  // Releasing the pin after the index's death is equally well-defined (the
  // refcount block is co-owned by the handle's deleter).
  pin.reset();
}

TEST(ShardedPin, PinnedViewEqualsPlainSnapshot) {
  auto corpus = small_corpus(44);
  core::ShardedIndex index = build_index(corpus.docs);
  const auto pin = index.pin_snapshot();
  const core::ShardedSnapshot plain = index.snapshot();
  EXPECT_EQ(pin->generations(), plain.generations());
  EXPECT_EQ(pin->num_docs(), plain.num_docs());
  core::SearchOptions qopts;
  qopts.z = 10;
  const std::string query = corpus.queries.front().text;
  const auto a = pin->retrieve(query, qopts);
  const auto b = plain.retrieve(query, qopts);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].doc, b[i].doc);
    EXPECT_DOUBLE_EQ(a[i].cosine, b[i].cosine);
  }
}

}  // namespace
