// Regression tests for the per-mode lazy doc-norm cache on SemanticSpace:
// staleness after fold-in and SVD-update (the scores served after a mutation
// must equal a from-scratch recompute), the append-extension fast path
// (bit-identical to invalidate-and-refill), and the hit/miss/extend
// accounting the observability layer reports.

#include <gtest/gtest.h>

#include "lsi/folding.hpp"
#include "lsi/lsi_index.hpp"
#include "lsi/retrieval.hpp"
#include "lsi/semantic_space.hpp"
#include "lsi/update.hpp"
#include "obs/trace.hpp"
#include "synth/corpus.hpp"
#include "synth/sparse_random.hpp"

namespace {

using namespace lsi;

core::SemanticSpace small_space(std::uint64_t seed, la::index_t k = 6) {
  const la::CscMatrix a = synth::random_sparse_matrix(40, 25, 0.15, seed);
  return core::try_build_semantic_space(a, k).value();
}

std::uint64_t counter_value(const obs::Sink& sink, const std::string& name) {
  for (const auto& [n, v] : sink.metrics().counters()) {
    if (n == name) return v;
  }
  return 0;
}

void expect_same_norms(const core::SemanticSpace& a,
                       const core::SemanticSpace& b) {
  for (std::size_t m = 0; m < core::kNumSimilarityModes; ++m) {
    const auto mode = static_cast<core::SimilarityMode>(m);
    const auto& na = a.doc_norms(mode);
    const auto& nb = b.doc_norms(mode);
    ASSERT_EQ(na.size(), nb.size()) << "mode " << m;
    for (std::size_t j = 0; j < na.size(); ++j) {
      EXPECT_EQ(na[j], nb[j]) << "mode " << m << " doc " << j;
    }
  }
}

// The historical hazard this file guards against: serve queries (warming the
// cache), fold new documents in, serve again. The second round must score
// against norms for *all* documents, not a stale prefix.
TEST(DocNormCache, ScoresStayFreshAfterFoldIn) {
  core::SemanticSpace space = small_space(7);
  space.prewarm_doc_norms();  // simulate an earlier query burst
  const la::index_t before = space.num_docs();

  const la::CscMatrix d = synth::random_sparse_matrix(40, 6, 0.2, 8);
  core::fold_in_documents(space, d);
  ASSERT_EQ(space.num_docs(), before + 6);

  // Reference: same space, caches dropped, refilled from scratch.
  core::SemanticSpace fresh = space;
  fresh.invalidate_doc_norms();
  expect_same_norms(space, fresh);

  // And the norms actually feed correct rankings for the appended docs.
  la::Vector query(40, 0.0);
  query[3] = 1.0;
  query[11] = 2.0;
  const auto warm = core::retrieve(space, query);
  const auto cold = core::retrieve(fresh, query);
  ASSERT_EQ(warm.size(), cold.size());
  for (std::size_t i = 0; i < warm.size(); ++i) {
    EXPECT_EQ(warm[i].doc, cold[i].doc);
    EXPECT_EQ(warm[i].cosine, cold[i].cosine);
  }
}

// fold_in_documents on a warm cache takes the O(p k) append-extension path
// (counted as "extend"), not an O(n k) refill (counted as "miss" + "fill").
TEST(DocNormCache, FoldInExtendsWarmCachesInsteadOfRefilling) {
  core::SemanticSpace space = small_space(9);
  space.prewarm_doc_norms();

  obs::Sink sink;
  obs::ScopedSink scoped(&sink);
  const la::CscMatrix d = synth::random_sparse_matrix(40, 4, 0.2, 10);
  core::fold_in_documents(space, d);
  EXPECT_EQ(counter_value(sink, "retrieval.norm_cache.extend"),
            4u * core::kNumSimilarityModes);

  space.prewarm_doc_norms();  // all three modes must now be pure hits
  EXPECT_EQ(counter_value(sink, "retrieval.norm_cache.hit"),
            core::kNumSimilarityModes);
  EXPECT_EQ(counter_value(sink, "retrieval.norm_cache.miss"), 0u);
}

// Cold caches stay cold across a fold-in: extension must not eagerly build
// norms nobody asked for (the lazy contract).
TEST(DocNormCache, ColdCachesStayLazyAcrossFoldIn) {
  core::SemanticSpace space = small_space(11);

  obs::Sink sink;
  obs::ScopedSink scoped(&sink);
  const la::CscMatrix d = synth::random_sparse_matrix(40, 3, 0.2, 12);
  core::fold_in_documents(space, d);
  EXPECT_EQ(counter_value(sink, "retrieval.norm_cache.extend"), 0u);

  // First use is still a (correct, full-length) lazy fill.
  const auto& norms = space.doc_norms(core::SimilarityMode::kColumnSpace);
  EXPECT_EQ(norms.size(), space.num_docs());
  EXPECT_EQ(counter_value(sink, "retrieval.norm_cache.miss"), 1u);
}

// SVD-update rotates existing V rows, so the warm cache must be dropped and
// rebuilt — scoring after update_documents equals a from-scratch recompute.
TEST(DocNormCache, SvdUpdateInvalidatesWarmCache) {
  auto corpus = [] {
    synth::CorpusSpec spec;
    spec.topics = 3;
    spec.concepts_per_topic = 6;
    spec.docs_per_topic = 12;
    spec.seed = 13;
    return synth::generate_corpus(spec);
  }();
  core::IndexOptions opts;
  opts.k = 8;
  text::Collection head(corpus.docs.begin(), corpus.docs.end() - 4);
  auto index = core::LsiIndex::try_build(head, opts).value();
  index.space().prewarm_doc_norms();

  text::Collection tail(corpus.docs.end() - 4, corpus.docs.end());
  index.add_documents(tail, core::AddMethod::kSvdUpdate);

  core::SemanticSpace fresh = index.space();
  fresh.invalidate_doc_norms();
  expect_same_norms(index.space(), fresh);
}

// Same-length mutations (reweighting every entry of V via a new sigma, say)
// are exactly what the row-count guard cannot catch; extend_doc_norms must
// also refuse to "extend" across a shrink or a length mismatch.
TEST(DocNormCache, ExtendRefusesLengthMismatchedCaches) {
  core::SemanticSpace space = small_space(15);
  space.prewarm_doc_norms();
  const la::index_t n = space.num_docs();

  // Claiming the pre-append count was n-2 while the cache holds n entries:
  // the cache is length-stale for that history and must be dropped, then
  // lazily refilled at full length on next use.
  space.extend_doc_norms(n - 2);
  obs::Sink sink;
  obs::ScopedSink scoped(&sink);
  const auto& norms = space.doc_norms(core::SimilarityMode::kProjected);
  EXPECT_EQ(norms.size(), n);
  EXPECT_EQ(counter_value(sink, "retrieval.norm_cache.miss"), 1u);

  // A claimed pre-append count larger than the current V ("append" shrank
  // the matrix, as consolidation's truncate-then-update does) also drops.
  core::SemanticSpace shrunk = small_space(16);
  shrunk.prewarm_doc_norms();
  shrunk.extend_doc_norms(shrunk.num_docs() + 5);
  obs::Sink sink2;
  obs::ScopedSink scoped2(&sink2);
  (void)shrunk.doc_norms(core::SimilarityMode::kPlainV);
  EXPECT_EQ(counter_value(sink2, "retrieval.norm_cache.miss"), 1u);
}

}  // namespace
