// AnnIndex unit tests: build determinism, the exact-cutoff and disabled
// gates, partition integrity (every document in exactly one posting list,
// packed rows bit-equal to V), nested cluster selection, the
// recall_target -> nprobe mapping, and append-only extend().

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "la/dense.hpp"
#include "lsi/ann.hpp"
#include "lsi/folding.hpp"
#include "lsi/semantic_space.hpp"
#include "synth/sparse_random.hpp"
#include "util/rng.hpp"

namespace {

using namespace lsi;
using namespace lsi::core;

std::shared_ptr<SemanticSpace> small_space(index_t m, index_t n, index_t k,
                                           unsigned seed) {
  auto a = synth::random_sparse_matrix(m, n, 0.3, seed);
  return std::make_shared<SemanticSpace>(
      try_build_semantic_space(a, k).value());
}

AnnOptions test_options() {
  AnnOptions opts;
  opts.exact_cutoff = 0;  // tests run on tiny corpora; always build
  return opts;
}

TEST(AnnIndex, BuildBelowCutoffReturnsNull) {
  auto space = small_space(40, 30, 6, 7);
  AnnOptions opts;
  opts.exact_cutoff = 31;  // corpus has 30 docs
  EXPECT_EQ(AnnIndex::build(*space, opts, 1), nullptr);
  opts.exact_cutoff = 30;
  EXPECT_NE(AnnIndex::build(*space, opts, 1), nullptr);
}

TEST(AnnIndex, BuildDisabledReturnsNull) {
  auto space = small_space(40, 30, 6, 7);
  AnnOptions opts = test_options();
  opts.enabled = false;
  EXPECT_EQ(AnnIndex::build(*space, opts, 1), nullptr);
}

TEST(AnnIndex, BuildIsDeterministic) {
  auto space = small_space(60, 50, 8, 11);
  const auto a = AnnIndex::build(*space, test_options(), 3);
  const auto b = AnnIndex::build(*space, test_options(), 3);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  ASSERT_EQ(a->num_centroids(), b->num_centroids());
  ASSERT_EQ(a->num_docs(), b->num_docs());
  for (index_t c = 0; c < a->num_centroids(); ++c) {
    const auto da = a->cluster_docs(c);
    const auto db = b->cluster_docs(c);
    ASSERT_EQ(da.size(), db.size()) << "centroid " << c;
    for (std::size_t t = 0; t < da.size(); ++t) {
      EXPECT_EQ(da[t], db[t]) << "centroid " << c << " slot " << t;
    }
    const auto ra = a->cluster_rows(c);
    const auto rb = b->cluster_rows(c);
    ASSERT_EQ(ra.size(), rb.size());
    for (std::size_t i = 0; i < ra.size(); ++i) {
      EXPECT_EQ(ra[i], rb[i]);  // exact bits
    }
  }
}

TEST(AnnIndex, PostingListsPartitionTheCorpus) {
  auto space = small_space(60, 50, 8, 13);
  const auto ann = AnnIndex::build(*space, test_options(), 1);
  ASSERT_NE(ann, nullptr);
  EXPECT_EQ(ann->num_docs(), 50u);
  EXPECT_EQ(ann->k(), 8u);
  EXPECT_EQ(ann->build_generation(), 1u);

  std::set<index_t> seen;
  for (index_t c = 0; c < ann->num_centroids(); ++c) {
    const auto docs = ann->cluster_docs(c);
    const auto rows = ann->cluster_rows(c);
    ASSERT_EQ(rows.size(), docs.size() * ann->k());
    for (std::size_t t = 0; t < docs.size(); ++t) {
      EXPECT_TRUE(seen.insert(docs[t]).second)
          << "doc " << docs[t] << " in two posting lists";
      if (t > 0) EXPECT_LT(docs[t - 1], docs[t]);  // ascending per list
      // Packed rows are bit-exact copies of V's rows.
      for (index_t i = 0; i < ann->k(); ++i) {
        EXPECT_EQ(rows[t * ann->k() + i], space->v(docs[t], i));
      }
    }
  }
  EXPECT_EQ(seen.size(), 50u);
}

TEST(AnnIndex, ManyCentroidsStillPartition) {
  // More centroids than natural clusters forces the empty-cluster reseed
  // path; the invariant stays: a valid partition, no out-of-range docs.
  auto space = small_space(50, 40, 6, 17);
  AnnOptions opts = test_options();
  opts.num_centroids = 32;
  const auto ann = AnnIndex::build(*space, opts, 1);
  ASSERT_NE(ann, nullptr);
  EXPECT_EQ(ann->num_centroids(), 32u);
  std::size_t total = 0;
  for (index_t c = 0; c < ann->num_centroids(); ++c) {
    for (index_t d : ann->cluster_docs(c)) EXPECT_LT(d, 40u);
    total += ann->cluster_docs(c).size();
  }
  EXPECT_EQ(total, 40u);
}

TEST(AnnIndex, SelectClustersIsNestedInNprobe) {
  auto space = small_space(60, 50, 8, 19);
  const auto ann = AnnIndex::build(*space, test_options(), 1);
  ASSERT_NE(ann, nullptr);
  const index_t c_total = ann->num_centroids();
  ASSERT_GT(c_total, 1u);

  util::Rng rng(23);
  std::vector<double> q(ann->k());
  for (auto& x : q) x = rng.uniform() - 0.5;

  std::vector<index_t> prev, cur;
  for (index_t p = 1; p <= c_total; ++p) {
    ann->select_clusters(q, p, cur);
    ASSERT_EQ(cur.size(), p);
    const std::set<index_t> cur_set(cur.begin(), cur.end());
    ASSERT_EQ(cur_set.size(), cur.size()) << "duplicate centroid at p=" << p;
    for (index_t c : prev) {
      EXPECT_TRUE(cur_set.count(c))
          << "nprobe " << p << " dropped a centroid from " << (p - 1);
    }
    prev = cur;
  }
}

TEST(AnnIndex, ResolveNprobeClampsAndIsMonotone) {
  auto space = small_space(60, 50, 8, 29);
  const auto ann = AnnIndex::build(*space, test_options(), 1);
  ASSERT_NE(ann, nullptr);
  const index_t c_total = ann->num_centroids();

  SearchOptions opts;
  opts.nprobe = 0;
  index_t prev = 0;
  for (double t : {0.05, 0.25, 0.5, 0.8, 0.95, 0.97, 0.99, 1.0}) {
    opts.recall_target = t;
    const index_t p = ann->resolve_nprobe(opts);
    EXPECT_GE(p, 1u);
    EXPECT_LE(p, c_total);
    EXPECT_GE(p, prev) << "recall_target " << t << " lowered nprobe";
    prev = p;
  }
  // Perfect recall degenerates to the exact scan.
  opts.recall_target = 1.0;
  EXPECT_EQ(ann->resolve_nprobe(opts), c_total);

  // Explicit nprobe wins and is clamped to [1, C].
  opts.nprobe = 1;
  EXPECT_EQ(ann->resolve_nprobe(opts), 1u);
  opts.nprobe = c_total + 1000;
  EXPECT_EQ(ann->resolve_nprobe(opts), c_total);
}

TEST(AnnIndex, ExtendCoversAppendedRowsAndKeepsGeneration) {
  auto a = synth::random_sparse_matrix(50, 40, 0.3, 31);
  auto space = try_build_semantic_space(a, 6).value();
  const auto base = AnnIndex::build(space, test_options(), 5);
  ASSERT_NE(base, nullptr);

  // Fold three new documents in (append-only: existing rows untouched).
  util::Rng rng(37);
  la::DenseMatrix extra(50, 3);
  for (index_t d = 0; d < 3; ++d) {
    for (int t = 0; t < 6; ++t) extra(rng.uniform_index(50), d) = 1.0;
  }
  fold_in_documents(space, extra);
  ASSERT_EQ(space.num_docs(), 43u);

  const auto grown = base->extend(space);
  ASSERT_NE(grown, nullptr);
  EXPECT_EQ(grown->num_docs(), 43u);
  EXPECT_EQ(grown->num_centroids(), base->num_centroids());
  // The partition itself did not change: the build generation carries over.
  EXPECT_EQ(grown->build_generation(), 5u);

  std::set<index_t> seen;
  std::size_t total = 0;
  for (index_t c = 0; c < grown->num_centroids(); ++c) {
    for (index_t d : grown->cluster_docs(c)) seen.insert(d);
    total += grown->cluster_docs(c).size();
  }
  EXPECT_EQ(total, 43u);
  EXPECT_EQ(seen.size(), 43u);

  // Existing documents kept their assignments.
  auto assignment_of = [](const AnnIndex& ann, index_t doc) {
    for (index_t c = 0; c < ann.num_centroids(); ++c) {
      for (index_t d : ann.cluster_docs(c)) {
        if (d == doc) return c;
      }
    }
    return static_cast<index_t>(-1);
  };
  for (index_t d = 0; d < 40; ++d) {
    EXPECT_EQ(assignment_of(*grown, d), assignment_of(*base, d)) << "doc " << d;
  }
}

TEST(AnnOptions, ValidateRejectsEmptyTrainingSample) {
  AnnOptions opts;
  EXPECT_TRUE(opts.Validate().ok());
  opts.training_sample = 0;
  EXPECT_FALSE(opts.Validate().ok());
}

}  // namespace
