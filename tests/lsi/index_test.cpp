// LsiIndex end-to-end API tests, plus persistence (io) and flop-model tests.

#include <gtest/gtest.h>

#include <sstream>

#include "data/med_topics.hpp"
#include "lsi/flops.hpp"
#include "lsi/io.hpp"
#include "lsi/lsi_index.hpp"

namespace {

using namespace lsi;
using core::AddMethod;
using core::IndexOptions;
using core::LsiIndex;

IndexOptions paper_index_options(core::index_t k) {
  IndexOptions opts;
  opts.parser.min_document_frequency = 2;
  opts.parser.fold_plurals = true;
  opts.scheme = weighting::kRaw;  // the paper's example is unweighted
  opts.k = k;
  return opts;
}

TEST(LsiIndex, BuildsPaperExample) {
  auto index = LsiIndex::try_build(data::med_topics(), paper_index_options(2)).value();
  EXPECT_EQ(index.vocabulary().size(), 18u);
  EXPECT_EQ(index.doc_labels().size(), 14u);
  EXPECT_EQ(index.space().k(), 2u);
}

TEST(LsiIndex, QueryReturnsLabelledResults) {
  auto index = LsiIndex::try_build(data::med_topics(), paper_index_options(2)).value();
  auto results = index.query(data::kQueryText);
  ASSERT_FALSE(results.empty());
  // Top 3 = {M8, M9, M12} as established by the paper-example tests.
  std::set<std::string> top;
  for (int i = 0; i < 3; ++i) top.insert(results[i].label);
  EXPECT_EQ(top, (std::set<std::string>{"M8", "M9", "M12"}));
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_LE(results[i].cosine, results[i - 1].cosine);
  }
}

TEST(LsiIndex, QueryOptionsThresholdAndTopZ) {
  auto index = LsiIndex::try_build(data::med_topics(), paper_index_options(2)).value();
  core::QueryOptions opts;
  opts.top_z = 2;
  EXPECT_EQ(index.query(data::kQueryText, opts).size(), 2u);
  opts.top_z = 0;
  opts.min_cosine = 0.99;
  for (const auto& r : index.query(data::kQueryText, opts)) {
    EXPECT_GE(r.cosine, 0.99);
  }
}

TEST(LsiIndex, AddDocumentsFoldIn) {
  auto index = LsiIndex::try_build(data::med_topics(), paper_index_options(2)).value();
  index.add_documents(data::med_update_topics(), AddMethod::kFoldIn);
  EXPECT_EQ(index.doc_labels().size(), 16u);
  EXPECT_EQ(index.doc_labels()[14], "M15");
  EXPECT_EQ(index.space().num_docs(), 16u);
  // The new documents are retrievable.
  auto results = index.query("depressed patients pressure fast");
  ASSERT_FALSE(results.empty());
  bool found_m16 = false;
  for (std::size_t i = 0; i < 5 && i < results.size(); ++i) {
    found_m16 = found_m16 || results[i].label == "M16";
  }
  EXPECT_TRUE(found_m16);
}

TEST(LsiIndex, AddDocumentsSvdUpdate) {
  auto index = LsiIndex::try_build(data::med_topics(), paper_index_options(2)).value();
  index.add_documents(data::med_update_topics(), AddMethod::kSvdUpdate);
  EXPECT_EQ(index.space().num_docs(), 16u);
  EXPECT_LT(core::orthogonality_loss(index.space().v), 1e-9);
}

TEST(LsiIndex, SimilarTermsFindsClusterMates) {
  auto index = LsiIndex::try_build(data::med_topics(), paper_index_options(2)).value();
  auto sims = index.similar_terms("oestrogen", 5);
  ASSERT_FALSE(sims.empty());
  // "depressed" co-occurs with oestrogen in M3/M4 and must rank high.
  bool found = false;
  for (const auto& [term, cos] : sims) found = found || term == "depressed";
  EXPECT_TRUE(found);
}

TEST(LsiIndex, SimilarTermsUnknownTermEmpty) {
  auto index = LsiIndex::try_build(data::med_topics(), paper_index_options(2)).value();
  EXPECT_TRUE(index.similar_terms("automobile").empty());
}

TEST(LsiIndex, WeightedSchemeAppliesGlobals) {
  IndexOptions opts = paper_index_options(2);
  opts.scheme = weighting::kLogEntropy;
  auto index = LsiIndex::try_build(data::med_topics(), opts).value();
  EXPECT_EQ(index.global_weights().size(), 18u);
  // Entropy weights lie in [0, 1].
  for (double g : index.global_weights()) {
    EXPECT_GE(g, -1e-12);
    EXPECT_LE(g, 1.0 + 1e-12);
  }
}

TEST(Io, RoundTripsDatabase) {
  auto index = LsiIndex::try_build(data::med_topics(), paper_index_options(3)).value();
  core::LsiDatabase db;
  db.space = index.space();
  db.vocabulary = index.vocabulary();
  db.doc_labels = index.doc_labels();
  std::stringstream buffer;
  core::try_save_database(buffer, db).or_throw();
  auto loaded = core::try_load_database(buffer).value();
  EXPECT_EQ(loaded.vocabulary.size(), 18u);
  EXPECT_EQ(loaded.doc_labels.size(), 14u);
  EXPECT_EQ(loaded.space.k(), 3u);
  EXPECT_LT(la::max_abs_diff(loaded.space.u, index.space().u), 0.0 + 1e-15);
  for (core::index_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(loaded.space.sigma[i], index.space().sigma[i]);
  }
  EXPECT_EQ(loaded.vocabulary.term(0), "abnormalities");
}

TEST(Io, RejectsGarbage) {
  std::stringstream buffer;
  buffer << "this is not an LSI database";
  EXPECT_THROW(core::try_load_database(buffer).value(), std::runtime_error);
}

TEST(Flops, FoldingFormulasExact) {
  core::FlopModelParams x;
  x.m = 100;
  x.n = 50;
  x.k = 10;
  x.p = 5;
  x.q = 3;
  EXPECT_EQ(core::flops_fold_documents(x), 2ull * 100 * 10 * 5);
  EXPECT_EQ(core::flops_fold_terms(x), 2ull * 50 * 10 * 3);
}

TEST(Flops, UpdatingDominatedByDenseRotation) {
  // The paper: SVD-updating's expense is the O(2k^2 m + 2k^2 n) dense
  // multiplications. For small D the rotation term must dominate.
  core::FlopModelParams x;
  x.m = 10000;
  x.n = 5000;
  x.k = 100;
  x.p = 10;
  x.nnz_d = 500;
  x.iterations = 20;
  x.triplets = 100;
  const auto total = core::flops_update_documents(x);
  const auto rotation = (2 * x.k * x.k - x.k) * (x.m + x.n);
  EXPECT_GT(rotation * 2, total);  // rotation is at least half the cost
}

TEST(Flops, FoldingBeatsUpdatingForFewDocs) {
  // "folding-in will still require considerably fewer flops than
  // SVD-updating when adding d new documents provided d << n".
  core::FlopModelParams x;
  x.m = 5000;
  x.n = 2000;
  x.k = 50;
  x.p = 20;
  x.nnz_d = 600;
  x.iterations = 30;
  x.triplets = 50;
  EXPECT_LT(core::flops_fold_documents(x), core::flops_update_documents(x));
}

TEST(Flops, RecomputeScalesWithNnz) {
  core::FlopModelParams small;
  small.m = 1000;
  small.n = 800;
  small.nnz_a = 5000;
  small.iterations = 50;
  small.triplets = 20;
  core::FlopModelParams big = small;
  big.nnz_a = 50000;
  EXPECT_GT(core::flops_recompute(big), core::flops_recompute(small));
}

}  // namespace
