// Concurrency stress test (CTest label "stress"): 4 reader threads + 2
// producer threads + a consolidation driver hammer one ConcurrentIndexer
// for well over 1000 operations. Run under ThreadSanitizer in CI
// (-DLSI_SANITIZE=thread) this is the race detector's target: any reader
// observing a half-published snapshot, a cold norm cache being filled
// concurrently, or writer state leaking across the publish fence shows up
// as a TSan report and fails the job.
//
// The assertions themselves are deliberately invariant-shaped (snapshot
// self-consistency, conservation of accepted documents) rather than
// value-shaped: interleaving is nondeterministic, the invariants are not.

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "lsi/batched_retrieval.hpp"
#include "lsi/concurrent.hpp"
#include "synth/corpus.hpp"

namespace {

using namespace lsi;

constexpr std::size_t kReaders = 4;
constexpr std::size_t kProducers = 2;
constexpr std::size_t kQueriesPerReader = 250;
constexpr std::size_t kBatchedEvery = 10;  // every 10th query runs batched

TEST(ConcurrentStress, ReadersAndProducersRaceFree) {
  synth::CorpusSpec spec;
  spec.topics = 4;
  spec.concepts_per_topic = 6;
  spec.docs_per_topic = 40;  // 160 docs
  spec.queries_per_topic = 3;
  spec.seed = 99;
  auto corpus = synth::generate_corpus(spec);
  const std::size_t train = 60;

  core::IndexOptions iopts;
  iopts.k = 10;
  text::Collection head(corpus.docs.begin(), corpus.docs.begin() + train);

  core::ConcurrentOptions copts;
  copts.queue_capacity = 8;  // small: exercises blocking backpressure
  copts.consolidate_every = 16;
  copts.max_batch = 4;
  core::ConcurrentIndexer indexer(
      core::LsiIndex::try_build(head, iopts).value(), copts);

  // --- producers: split the remaining 100 docs, mixing add / try_add ----
  std::atomic<std::size_t> accepted{0};
  std::atomic<std::size_t> rejected{0};
  std::vector<std::thread> producers;
  const std::size_t tail = corpus.docs.size() - train;
  const std::size_t per_producer = tail / kProducers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      const std::size_t begin = train + p * per_producer;
      const std::size_t end =
          (p + 1 == kProducers) ? corpus.docs.size() : begin + per_producer;
      for (std::size_t d = begin; d < end; ++d) {
        if (d % 2 == 0) {
          ASSERT_TRUE(indexer.add(corpus.docs[d]).ok());
          accepted.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        // Non-blocking path: retry on backpressure, never drop.
        for (;;) {
          const Status s = indexer.try_add(corpus.docs[d]);
          if (s.ok()) {
            accepted.fetch_add(1, std::memory_order_relaxed);
            break;
          }
          ASSERT_EQ(s.code(), StatusCode::kResourceExhausted) << s.message();
          rejected.fetch_add(1, std::memory_order_relaxed);
          std::this_thread::yield();
        }
      }
    });
  }

  // --- readers: pin a snapshot per query, check self-consistency ----------
  std::atomic<std::size_t> queries_done{0};
  std::atomic<std::size_t> during_consolidation{0};
  std::vector<std::thread> readers;
  for (std::size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      for (std::size_t i = 0; i < kQueriesPerReader; ++i) {
        const auto& query =
            corpus.queries[(r * kQueriesPerReader + i) % corpus.queries.size()];
        auto snap = indexer.snapshot();
        const bool overlapped = indexer.consolidating();
        if (i % kBatchedEvery == 0) {
          // Batched path pinned to the same snapshot must agree with the
          // single-query path bit for bit, even mid-ingest.
          const la::Vector w = snap->context().weighted_term_vector(query.text);
          core::BatchedRetriever batched(snap->space_ptr());
          const auto ranked = batched.rank(
              core::QueryBatch::from_term_vectors(snap->space(), {w, w}));
          const auto single = snap->retrieve(w);
          ASSERT_EQ(ranked.size(), 2u);
          for (const auto& lane : ranked) {
            ASSERT_EQ(lane.size(), single.size());
            for (std::size_t s = 0; s < single.size(); ++s) {
              ASSERT_EQ(lane[s].doc, single[s].doc);
              ASSERT_EQ(lane[s].cosine, single[s].cosine);
            }
          }
        } else {
          const auto results = snap->query(query.text);
          const std::size_t docs = snap->space().num_docs();
          ASSERT_EQ(snap->doc_labels().size(), docs);
          ASSERT_GE(docs, train);
          for (const auto& hit : results) {
            ASSERT_LT(hit.doc, docs);
            ASSERT_EQ(hit.label, snap->doc_labels()[hit.doc]);
          }
        }
        if (overlapped && indexer.consolidating()) {
          during_consolidation.fetch_add(1, std::memory_order_relaxed);
        }
        queries_done.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // --- consolidation driver: force SVD-updates mid-stream ----------------
  std::thread driver([&] {
    for (int i = 0; i < 3; ++i) {
      std::this_thread::yield();
      ASSERT_TRUE(indexer.consolidate().ok());
    }
  });

  for (auto& t : producers) t.join();
  driver.join();
  for (auto& t : readers) t.join();
  indexer.flush();

  // ≥ 1000 operations total, per the acceptance criterion.
  const std::size_t ops = queries_done.load() + accepted.load();
  EXPECT_GE(ops, 1000u) << "queries=" << queries_done.load()
                        << " ingests=" << accepted.load()
                        << " backpressure_retries=" << rejected.load();

  // Conservation: every accepted document is in the final snapshot exactly
  // once — nothing dropped, nothing duplicated, base prefix untouched.
  EXPECT_EQ(indexer.ingested(), tail);
  auto snap = indexer.snapshot();
  ASSERT_EQ(snap->space().num_docs(), corpus.docs.size());
  ASSERT_EQ(snap->doc_labels().size(), corpus.docs.size());
  for (std::size_t d = 0; d < train; ++d) {
    EXPECT_EQ(snap->doc_labels()[d], corpus.docs[d].label);
  }
  std::set<std::string> tail_labels(snap->doc_labels().begin() + train,
                                    snap->doc_labels().end());
  EXPECT_EQ(tail_labels.size(), tail) << "duplicate or missing labels";
  for (std::size_t d = train; d < corpus.docs.size(); ++d) {
    EXPECT_EQ(tail_labels.count(corpus.docs[d].label), 1u)
        << "lost " << corpus.docs[d].label;
  }

  EXPECT_GE(indexer.publishes(), 1u + tail / copts.max_batch / 2);
  EXPECT_GE(indexer.consolidations(), 3u);  // the driver forced three

  // shutdown() must be clean while snapshots are still held.
  indexer.shutdown();
  EXPECT_EQ(snap->space().num_docs(), corpus.docs.size());
}

}  // namespace
