// Cluster-pruned retrieval integration tests: the exactness contract
// (nprobe >= num_centroids reproduces the exact ranking bit for bit, in
// every SimilarityMode, through the snapshot and the sharded scatter), the
// monotone recall@10 property behind the recall_target knob, the exact
// fallback below the corpus cutoff, and coarse deadline enforcement on the
// try_* paths.

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "lsi/batched_retrieval.hpp"
#include "lsi/lsi.hpp"
#include "synth/corpus.hpp"
#include "synth/sparse_random.hpp"
#include "util/rng.hpp"

namespace {

using namespace lsi;
using namespace lsi::core;

std::shared_ptr<SemanticSpace> medium_space(index_t m, index_t n, index_t k,
                                            unsigned seed) {
  auto a = synth::random_sparse_matrix(m, n, 0.15, seed);
  auto space = std::make_shared<SemanticSpace>(
      try_build_semantic_space(a, k).value());
  space->prewarm_doc_norms();
  return space;
}

std::vector<la::Vector> sparse_queries(index_t m, std::size_t count,
                                       unsigned seed) {
  util::Rng rng(seed);
  std::vector<la::Vector> queries(count, la::Vector(m, 0.0));
  for (auto& q : queries) {
    for (int t = 0; t < 5; ++t) {
      q[rng.uniform_index(m)] = 1.0 + static_cast<double>(rng.uniform_index(3));
    }
  }
  return queries;
}

void expect_identical(const std::vector<ScoredDoc>& got,
                      const std::vector<ScoredDoc>& want,
                      const char* what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].doc, want[i].doc) << what << " rank " << i;
    EXPECT_EQ(got[i].cosine, want[i].cosine) << what << " rank " << i;
  }
}

TEST(AnnPruning, FullProbeBitIdenticalToExactForEveryMode) {
  auto space = medium_space(120, 300, 10, 41);
  AnnOptions aopts;
  aopts.exact_cutoff = 0;
  const auto ann = AnnIndex::build(*space, aopts, 1);
  ASSERT_NE(ann, nullptr);
  ASSERT_GT(ann->num_centroids(), 1u);

  const auto queries = sparse_queries(120, 12, 43);
  const BatchedRetriever pruned(space, ann);
  const BatchedRetriever exact(space);
  const auto batch = QueryBatch::from_term_vectors(*space, queries);

  for (SimilarityMode mode : {SimilarityMode::kColumnSpace,
                              SimilarityMode::kProjected,
                              SimilarityMode::kPlainV}) {
    SearchOptions popts;
    popts.mode = mode;
    popts.search = SearchMode::kPruned;
    popts.nprobe = ann->num_centroids();  // scan everything

    SearchOptions eopts;
    eopts.mode = mode;
    eopts.search = SearchMode::kExact;

    QueryStats pstats, estats;
    const auto p = pruned.rank(batch, popts, &pstats);
    const auto e = exact.rank(batch, eopts, &estats);
    ASSERT_EQ(p.size(), e.size());
    for (std::size_t q = 0; q < p.size(); ++q) {
      expect_identical(p[q], e[q], "full-probe parity");
    }
    // The pruned path actually ran (it is exact because nprobe == C, not
    // because it silently fell back).
    EXPECT_EQ(pstats.ann_pruned_queries, batch.size());
    EXPECT_EQ(estats.ann_pruned_queries, 0u);
  }
}

TEST(AnnPruning, RecallTargetOneBitIdenticalToExact) {
  auto space = medium_space(100, 250, 8, 47);
  AnnOptions aopts;
  aopts.exact_cutoff = 0;
  const auto ann = AnnIndex::build(*space, aopts, 1);
  ASSERT_NE(ann, nullptr);

  const auto queries = sparse_queries(100, 8, 53);
  const auto batch = QueryBatch::from_term_vectors(*space, queries);
  const BatchedRetriever retriever(space, ann);

  SearchOptions popts;
  popts.recall_target = 1.0;  // resolves to every centroid
  SearchOptions eopts;
  eopts.search = SearchMode::kExact;

  const auto p = retriever.rank(batch, popts);
  const auto e = retriever.rank(batch, eopts);
  ASSERT_EQ(p.size(), e.size());
  for (std::size_t q = 0; q < p.size(); ++q) {
    expect_identical(p[q], e[q], "recall_target=1.0");
  }
}

TEST(AnnPruning, RecallAtTenIsMonotoneInNprobe) {
  auto space = medium_space(120, 400, 10, 59);
  AnnOptions aopts;
  aopts.exact_cutoff = 0;
  const auto ann = AnnIndex::build(*space, aopts, 1);
  ASSERT_NE(ann, nullptr);
  const index_t c_total = ann->num_centroids();
  ASSERT_GT(c_total, 3u);

  const auto queries = sparse_queries(120, 16, 61);
  const auto batch = QueryBatch::from_term_vectors(*space, queries);
  const BatchedRetriever retriever(space, ann);

  SearchOptions eopts;
  eopts.search = SearchMode::kExact;
  eopts.z = 10;
  const auto exact = retriever.rank(batch, eopts);

  double prev_recall = -1.0;
  for (index_t p = 1; p <= c_total; ++p) {
    SearchOptions popts;
    popts.search = SearchMode::kPruned;
    popts.nprobe = p;
    popts.z = 10;
    const auto pruned = retriever.rank(batch, popts);

    double hit = 0.0, want = 0.0;
    for (std::size_t q = 0; q < pruned.size(); ++q) {
      std::set<index_t> truth;
      for (const auto& d : exact[q]) truth.insert(d.doc);
      for (const auto& d : pruned[q]) hit += truth.count(d.doc);
      want += static_cast<double>(truth.size());
    }
    const double recall = want > 0.0 ? hit / want : 1.0;
    EXPECT_GE(recall, prev_recall)
        << "recall@10 dropped when nprobe grew to " << p;
    prev_recall = recall;
  }
  EXPECT_DOUBLE_EQ(prev_recall, 1.0);  // full probe == exact
}

TEST(AnnPruning, PrunedModeFallsBackToExactWithoutStructure) {
  auto space = medium_space(80, 120, 8, 67);
  const auto queries = sparse_queries(80, 6, 71);
  const auto batch = QueryBatch::from_term_vectors(*space, queries);

  // No AnnIndex attached: kPruned must degrade to the exact scan, counted
  // as a fallback, never crash or return empty results.
  const BatchedRetriever retriever(space, nullptr);
  SearchOptions popts;
  popts.search = SearchMode::kPruned;
  popts.nprobe = 2;
  QueryStats stats;
  const auto p = retriever.rank(batch, popts, &stats);
  EXPECT_EQ(stats.ann_pruned_queries, 0u);

  SearchOptions eopts;
  eopts.search = SearchMode::kExact;
  const auto e = retriever.rank(batch, eopts);
  ASSERT_EQ(p.size(), e.size());
  for (std::size_t q = 0; q < p.size(); ++q) {
    expect_identical(p[q], e[q], "fallback");
  }
}

TEST(AnnPruning, SnapshotBelowCutoffServesExact) {
  // ConcurrentIndexer with the default cutoff on a tiny corpus: the
  // snapshot carries no AnnIndex and kAuto queries take the exact path.
  synth::CorpusSpec spec;
  spec.topics = 3;
  spec.concepts_per_topic = 5;
  spec.docs_per_topic = 15;
  spec.queries_per_topic = 2;
  spec.seed = 73;
  const auto corpus = synth::generate_corpus(spec);

  IndexOptions iopts;
  iopts.k = 8;
  ConcurrentIndexer indexer(LsiIndex::try_build(corpus.docs, iopts).value());
  auto snap = indexer.snapshot();
  EXPECT_EQ(snap->ann(), nullptr);  // 45 docs < default exact_cutoff

  SearchOptions opts;
  opts.z = 5;
  const auto hits = snap->query(corpus.queries[0].text, opts);
  EXPECT_FALSE(hits.empty());
  indexer.shutdown();
}

TEST(AnnPruning, SnapshotFullProbeMatchesExactEndToEnd) {
  synth::CorpusSpec spec;
  spec.topics = 4;
  spec.concepts_per_topic = 6;
  spec.docs_per_topic = 25;  // 100 docs
  spec.queries_per_topic = 2;
  spec.seed = 79;
  const auto corpus = synth::generate_corpus(spec);

  IndexOptions iopts;
  iopts.k = 10;
  ConcurrentOptions copts;
  copts.ann.exact_cutoff = 0;  // build the structure on this small corpus
  ConcurrentIndexer indexer(LsiIndex::try_build(corpus.docs, iopts).value(),
                            copts);
  auto snap = indexer.snapshot();
  ASSERT_NE(snap->ann(), nullptr);

  for (const auto& q : corpus.queries) {
    SearchOptions popts;
    popts.search = SearchMode::kPruned;
    popts.nprobe = snap->ann()->num_centroids();
    SearchOptions eopts;
    eopts.search = SearchMode::kExact;
    const auto p = snap->query(q.text, popts);
    const auto e = snap->query(q.text, eopts);
    ASSERT_EQ(p.size(), e.size()) << q.text;
    for (std::size_t i = 0; i < p.size(); ++i) {
      EXPECT_EQ(p[i].doc, e[i].doc) << q.text << " rank " << i;
      EXPECT_EQ(p[i].cosine, e[i].cosine) << q.text << " rank " << i;
      EXPECT_EQ(p[i].label, e[i].label) << q.text << " rank " << i;
    }
  }
  indexer.shutdown();
}

TEST(AnnPruning, ShardedFullProbeMatchesExactAndReportsAnnState) {
  synth::CorpusSpec spec;
  spec.topics = 4;
  spec.concepts_per_topic = 6;
  spec.docs_per_topic = 30;  // 120 docs over 2 shards
  spec.queries_per_topic = 2;
  spec.seed = 83;
  const auto corpus = synth::generate_corpus(spec);

  ShardingOptions sopts;
  sopts.num_shards = 2;
  sopts.index.k = 12;
  sopts.concurrent.ann.exact_cutoff = 0;
  auto index = ShardedIndex::try_build(corpus.docs, sopts).value();

  const ShardedSnapshot view = index.snapshot();
  const auto infos = index.shard_infos(view);
  ASSERT_EQ(infos.size(), 2u);
  for (const auto& info : infos) {
    EXPECT_FALSE(info.ann_exact_fallback) << "shard " << info.shard;
    EXPECT_GT(info.ann_centroids, 0u) << "shard " << info.shard;
    EXPECT_EQ(info.ann_generation, info.generation) << "shard " << info.shard;
  }

  std::vector<std::string> texts;
  for (const auto& q : corpus.queries) texts.push_back(q.text);

  SearchOptions popts;
  popts.search = SearchMode::kPruned;
  popts.nprobe = 1u << 20;  // clamped to every shard's centroid count
  popts.z = 10;
  SearchOptions eopts;
  eopts.search = SearchMode::kExact;
  eopts.z = 10;

  const auto p = view.rank_batch(texts, popts);
  const auto e = view.rank_batch(texts, eopts);
  ASSERT_EQ(p.size(), e.size());
  for (std::size_t q = 0; q < p.size(); ++q) {
    expect_identical(p[q], e[q], texts[q].c_str());
  }
  index.shutdown();
}

TEST(AnnPruning, ExpiredDeadlineReportsDeadlineExceeded) {
  auto space = medium_space(80, 120, 8, 89);
  const auto queries = sparse_queries(80, 4, 97);
  const auto batch = QueryBatch::from_term_vectors(*space, queries);
  const BatchedRetriever retriever(space);

  SearchOptions opts;
  opts.deadline = std::chrono::steady_clock::now() - std::chrono::seconds(1);
  const auto ranked = retriever.try_rank(batch, opts);
  ASSERT_FALSE(ranked.ok());
  EXPECT_EQ(ranked.status().code(), StatusCode::kDeadlineExceeded);

  // A future deadline admits the batch normally.
  opts.deadline = std::chrono::steady_clock::now() + std::chrono::hours(1);
  EXPECT_TRUE(retriever.try_rank(batch, opts).ok());
}

TEST(AnnPruning, ShardedExpiredDeadlineReportsDeadlineExceeded) {
  synth::CorpusSpec spec;
  spec.topics = 3;
  spec.concepts_per_topic = 5;
  spec.docs_per_topic = 15;
  spec.queries_per_topic = 2;
  spec.seed = 101;
  const auto corpus = synth::generate_corpus(spec);

  ShardingOptions sopts;
  sopts.num_shards = 2;
  sopts.index.k = 8;
  auto index = ShardedIndex::try_build(corpus.docs, sopts).value();

  const ShardedSnapshot view = index.snapshot();
  SearchOptions opts;
  opts.deadline = std::chrono::steady_clock::now() - std::chrono::seconds(1);
  const auto ranked = view.try_rank_batch({corpus.queries[0].text}, opts);
  ASSERT_FALSE(ranked.ok());
  EXPECT_EQ(ranked.status().code(), StatusCode::kDeadlineExceeded);

  // Invalid knobs surface as kInvalidArgument from the same checked entry.
  SearchOptions bad;
  bad.search = SearchMode::kExact;
  bad.nprobe = 3;
  const auto invalid = view.try_rank_batch({corpus.queries[0].text}, bad);
  ASSERT_FALSE(invalid.ok());
  EXPECT_EQ(invalid.status().code(), StatusCode::kInvalidArgument);
  index.shutdown();
}

}  // namespace
