// Regression tests against the paper's running example: the Figure 5
// numerical oracles, the Table 4 rankings, and the Section 3.2 comparison
// with lexical matching.
//
// The paper's printed example is internally inconsistent in small ways (its
// Table 3 "respect" row contradicts the topic text; Table 4's k=2 cosines
// at threshold .75 contradict Section 3.2's claim that only M7/M11 join).
// These tests therefore assert *structure* — orientation, clusters, top-set
// composition — with tolerances reflecting the one-cell ambiguity, and the
// exact measured values are reported by the bench binaries.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <string>

#include "baseline/lexical.hpp"
#include "data/med_topics.hpp"
#include "lsi/retrieval.hpp"
#include "lsi/semantic_space.hpp"
#include "text/parser.hpp"

namespace {

using namespace lsi;
using core::QueryOptions;
using core::ScoredDoc;
using core::SemanticSpace;

SemanticSpace paper_space(core::index_t k) {
  auto space = core::try_build_semantic_space(data::table3_counts(), k).value();
  core::align_signs_to(space, data::figure5_u2());
  return space;
}

la::Vector paper_query() {
  la::Vector q(18, 0.0);
  q[0] = 1.0;  // abnormalities
  q[1] = 1.0;  // age
  q[3] = 1.0;  // blood
  return q;
}

std::set<std::string> labels_of(const std::vector<ScoredDoc>& ranked,
                                std::size_t take) {
  std::set<std::string> out;
  for (std::size_t i = 0; i < std::min(take, ranked.size()); ++i) {
    std::string label = "M";
    label += std::to_string(ranked[i].doc + 1);
    out.insert(std::move(label));
  }
  return out;
}

TEST(Figure5, SingularValuesNearPaper) {
  auto space = paper_space(2);
  // Printed Table 3 yields (3.5136, 2.6464); the paper prints
  // (3.5919, 2.6471) — the example's known internal drift.
  EXPECT_NEAR(space.sigma[0], data::figure5_sigma()[0], 0.09);
  EXPECT_NEAR(space.sigma[1], data::figure5_sigma()[1], 0.09);
}

TEST(Figure5, U2MatchesPaperStructure) {
  auto space = paper_space(2);
  const auto& paper = data::figure5_u2();
  for (core::index_t i = 0; i < 18; ++i) {
    EXPECT_NEAR(space.u(i, 0), paper(i, 0), 0.08) << "row " << i << " col 0";
    EXPECT_NEAR(space.u(i, 1), paper(i, 1), 0.08) << "row " << i << " col 1";
  }
  // First factor is nonnegative across terms (the Perron-like direction).
  for (core::index_t i = 0; i < 18; ++i) EXPECT_GT(space.u(i, 0), -1e-9);
}

TEST(Figure5, QueryCoordinatesNearPaper) {
  auto space = paper_space(2);
  auto q_hat = core::project_query(space, paper_query());
  EXPECT_NEAR(q_hat[0], data::figure5_query_coords()[0], 0.05);
  EXPECT_NEAR(q_hat[1], data::figure5_query_coords()[1], 0.05);
}

TEST(Figure5, QueryFormulaIsSumOfTermRowsOverSigma) {
  // Equation 6 closed form: q_hat_i = (U[abn,i] + U[age,i] + U[blood,i])/s_i.
  auto space = paper_space(2);
  auto q_hat = core::project_query(space, paper_query());
  for (int i = 0; i < 2; ++i) {
    const double expect =
        (space.u(0, i) + space.u(1, i) + space.u(3, i)) / space.sigma[i];
    EXPECT_NEAR(q_hat[i], expect, 1e-12);
  }
}

TEST(Figure4, ClustersMatchPaperDescription) {
  // "documents and terms pertaining to patient behavior or hormone
  // production are clustered above the x-axis while ... blood disease or
  // fasting are clustered near the lower y-axis."
  auto space = paper_space(2);
  // Terms: depressed (6), discharge (7), oestrogen (11) above axis.
  EXPECT_GT(space.u(6, 1), 0.0);
  EXPECT_GT(space.u(7, 1), 0.0);
  EXPECT_GT(space.u(11, 1), 0.0);
  // fast (9), rats (14), pressure (13) well below.
  EXPECT_LT(space.u(9, 1), -0.2);
  EXPECT_LT(space.u(14, 1), -0.2);
  EXPECT_LT(space.u(13, 1), -0.2);
  // Documents: M3, M4 (hormone) above; M13, M14 (fast/rats) below.
  EXPECT_GT(space.doc_coords(2)[1], 0.0);
  EXPECT_GT(space.doc_coords(3)[1], 0.0);
  EXPECT_LT(space.doc_coords(12)[1], 0.0);
  EXPECT_LT(space.doc_coords(13)[1], 0.0);
}

TEST(Table4, K2TopSetMatchesPaper) {
  auto space = paper_space(2);
  auto ranked = core::retrieve(space, paper_query());
  // Paper's top three at k=2: {M9, M12, M8} (cosines 1.00/.88/.85).
  EXPECT_EQ(labels_of(ranked, 3),
            (std::set<std::string>{"M8", "M9", "M12"}));
  // Next tier: {M11, M10} in the paper (.82/.79).
  auto top5 = labels_of(ranked, 5);
  EXPECT_TRUE(top5.count("M11"));
  EXPECT_TRUE(top5.count("M10"));
}

TEST(Table4, K2ReturnedSetAtThreshold40) {
  auto space = paper_space(2);
  QueryOptions opts;
  opts.min_cosine = 0.40;
  auto ranked = core::retrieve(space, paper_query(), opts);
  // Paper returns 11 documents; every one of them must be present.
  auto got = labels_of(ranked, ranked.size());
  for (const auto& row : data::table4_ranking(2)) {
    EXPECT_TRUE(got.count(row.label)) << row.label;
  }
  // And irrelevant hormone topics M3/M5/M6 must stay out.
  EXPECT_FALSE(got.count("M5"));
  EXPECT_FALSE(got.count("M6"));
}

TEST(Table4, HigherKSharpensTheReturnedSet) {
  // Paper: k=4 returns 6 docs, k=8 only 3 ({M8, M12, M10}) at cosine .40 —
  // more factors reconstruct A more exactly, so fewer latent matches.
  QueryOptions opts;
  opts.min_cosine = 0.40;
  auto r2 = core::retrieve(paper_space(2), paper_query(), opts);
  auto r4 = core::retrieve(paper_space(4), paper_query(), opts);
  auto r8 = core::retrieve(paper_space(8), paper_query(), opts);
  EXPECT_GT(r2.size(), r4.size());
  EXPECT_GE(r4.size(), r8.size());
  auto top8 = labels_of(r8, r8.size());
  EXPECT_TRUE(top8.count("M8"));
  EXPECT_TRUE(top8.count("M12"));
  EXPECT_TRUE(top8.count("M10"));
}

TEST(Table4, M9RanksHighAtK2ButLexicalMissesIt) {
  // The paper's motivating observation: M9 ("christmas disease" =
  // haemophilia) is the most relevant topic, found by LSI but invisible to
  // literal matching (it shares no query term).
  auto space = paper_space(2);
  auto ranked = core::retrieve(space, paper_query());
  std::size_t m9_rank = 99;
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    if (ranked[i].doc == 8) m9_rank = i;
  }
  EXPECT_LT(m9_rank, 3u);

  auto hits = baseline::lexical_match(data::table3_counts(), paper_query());
  for (const auto& h : hits) EXPECT_NE(h.doc, 8u);
}

TEST(Section32, LexicalMatchingReturnsPaperSet) {
  auto hits = baseline::lexical_match(data::table3_counts(), paper_query());
  std::set<std::string> got;
  for (const auto& h : hits) {
    std::string label = "M";
    label += std::to_string(h.doc + 1);
    got.insert(std::move(label));
  }
  const auto& expect = data::lexical_match_results();
  EXPECT_EQ(got, std::set<std::string>(expect.begin(), expect.end()));
}

TEST(Section32, ParsedTextMatrixAlsoWorks) {
  // End-to-end: parse the Table 2 texts (not the verbatim matrix), build a
  // k=2 space, and check that LSI still surfaces M9 in the top 3 and that
  // the blood/fasting cluster separates from the hormone cluster.
  text::ParserOptions popts;
  popts.min_document_frequency = 2;
  popts.fold_plurals = true;
  auto tdm = text::build_term_document_matrix(data::med_topics(), popts);
  auto space = core::try_build_semantic_space(tdm.counts, 2).value();
  auto q = text::text_to_term_vector(tdm, data::kQueryText, popts);
  auto ranked = core::retrieve(space, q);
  EXPECT_EQ(labels_of(ranked, 3),
            (std::set<std::string>{"M8", "M9", "M12"}));
}

TEST(TermSimilarity, PolysemyExample) {
  // "Although topics M1 and M2 share the polysemous terms culture and
  // discharge they are not represented by nearly identical vectors". At
  // k=2 everything in the upper cluster is nearly collinear; the
  // discrimination the paper describes emerges with a few more factors,
  // where the genuinely-similar hormone pair M3/M4 outscores the merely
  // word-sharing pair M1/M2.
  auto space = paper_space(4);
  const double m1_m2 = core::document_similarity(space, 0, 1);
  EXPECT_LT(m1_m2, 0.97);
  const double m3_m4 = core::document_similarity(space, 2, 3);
  EXPECT_GT(m3_m4, m1_m2);
}

}  // namespace
