// Synthetic-corpus generator tests: structure, determinism, and the
// statistical properties the experiments rely on.

#include <gtest/gtest.h>

#include <set>

#include "synth/bilingual.hpp"
#include "synth/corpus.hpp"
#include "synth/noise.hpp"
#include "synth/sparse_random.hpp"
#include "synth/spelling.hpp"
#include "synth/synonym_test.hpp"
#include "text/parser.hpp"
#include "util/rng.hpp"

namespace {

using namespace lsi;
using namespace lsi::synth;

CorpusSpec small_spec() {
  CorpusSpec spec;
  spec.topics = 4;
  spec.concepts_per_topic = 6;
  spec.shared_concepts = 8;
  spec.docs_per_topic = 10;
  spec.mean_doc_len = 25;
  spec.queries_per_topic = 2;
  spec.seed = 99;
  return spec;
}

TEST(Corpus, ShapesMatchSpec) {
  auto corpus = generate_corpus(small_spec());
  EXPECT_EQ(corpus.docs.size(), 40u);
  EXPECT_EQ(corpus.doc_topics.size(), 40u);
  EXPECT_EQ(corpus.queries.size(), 8u);
  EXPECT_EQ(corpus.concept_forms.size(), 24u);
}

TEST(Corpus, DeterministicForSeed) {
  auto a = generate_corpus(small_spec());
  auto b = generate_corpus(small_spec());
  ASSERT_EQ(a.docs.size(), b.docs.size());
  for (std::size_t i = 0; i < a.docs.size(); ++i) {
    EXPECT_EQ(a.docs[i].body, b.docs[i].body);
  }
  auto spec2 = small_spec();
  spec2.seed = 100;
  auto c = generate_corpus(spec2);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.docs.size(); ++i) {
    any_diff = any_diff || a.docs[i].body != c.docs[i].body;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Corpus, QueriesHaveRelevantSets) {
  auto corpus = generate_corpus(small_spec());
  for (const auto& q : corpus.queries) {
    EXPECT_EQ(q.relevant.size(), 10u);  // docs_per_topic
    EXPECT_FALSE(q.text.empty());
    for (auto d : q.relevant) {
      EXPECT_EQ(corpus.doc_topics[d], q.topic);
    }
  }
}

TEST(Corpus, TopicalTermsConcentrateInTopic) {
  // Documents of topic 0 should contain topic-0 concept forms far more
  // often than documents of other topics do.
  auto corpus = generate_corpus(small_spec());
  const std::string probe = corpus.concept_forms[0][0];  // topic 0, dominant
  std::size_t in_topic = 0, out_topic = 0;
  for (std::size_t d = 0; d < corpus.docs.size(); ++d) {
    const bool contains =
        corpus.docs[d].body.find(probe) != std::string::npos;
    if (!contains) continue;
    if (corpus.doc_topics[d] == 0) {
      ++in_topic;
    } else {
      ++out_topic;
    }
  }
  EXPECT_GT(in_topic, 3u);
  EXPECT_LE(out_topic, in_topic / 2);
}

TEST(Corpus, ZeroPolysemyKeepsFormsUnique) {
  auto spec = small_spec();
  spec.polysemy_prob = 0.0;
  auto corpus = generate_corpus(spec);
  std::set<std::string> seen;
  for (const auto& forms : corpus.concept_forms) {
    for (const auto& f : forms) {
      EXPECT_TRUE(seen.insert(f).second) << "duplicate form " << f;
    }
  }
}

TEST(Corpus, ParsesIntoTermDocumentMatrix) {
  auto corpus = generate_corpus(small_spec());
  auto tdm = text::build_term_document_matrix(corpus.docs, {});
  EXPECT_EQ(tdm.counts.cols(), corpus.docs.size());
  EXPECT_GT(tdm.vocabulary.size(), 20u);
}

TEST(Bilingual, ViewsAreIndexAligned) {
  BilingualSpec spec;
  spec.topics = 3;
  spec.docs_per_topic = 5;
  spec.seed = 7;
  auto corpus = generate_bilingual_corpus(spec);
  EXPECT_EQ(corpus.dual.size(), 15u);
  EXPECT_EQ(corpus.mono_a.size(), 15u);
  EXPECT_EQ(corpus.mono_b.size(), 15u);
  // Dual text contains both renderings.
  EXPECT_NE(corpus.dual[0].body.find(corpus.mono_a[0].body),
            std::string::npos);
  EXPECT_NE(corpus.dual[0].body.find(corpus.mono_b[0].body),
            std::string::npos);
}

TEST(Bilingual, LanguagesAreDisjoint) {
  BilingualSpec spec;
  spec.seed = 8;
  auto corpus = generate_bilingual_corpus(spec);
  for (const auto& d : corpus.mono_a) {
    EXPECT_EQ(d.body.find(" b"), std::string::npos)
        << "language B token in mono_a";
    EXPECT_NE(d.body[0], 'b');
  }
  EXPECT_FALSE(corpus.queries_a.empty());
  EXPECT_FALSE(corpus.queries_b.empty());
  EXPECT_EQ(corpus.queries_a[0].text[0], 'a');
  EXPECT_EQ(corpus.queries_b[0].text[0], 'b');
}

TEST(Noise, ZeroRateIsIdentity) {
  util::Rng rng(1);
  NoiseSpec spec;
  spec.word_error_rate = 0.0;
  EXPECT_EQ(corrupt_text("hello world", spec, rng), "hello world");
}

TEST(Noise, FullRateCorruptsMostWords) {
  util::Rng rng(2);
  NoiseSpec spec;
  spec.word_error_rate = 1.0;
  const std::string original =
      "alpha bravo charlie delta echo foxtrot golf hotel india juliet";
  const std::string corrupted = corrupt_text(original, spec, rng);
  EXPECT_GT(word_error_fraction(original, corrupted), 0.5);
}

TEST(Noise, RateApproximatelyRespected) {
  util::Rng rng(3);
  NoiseSpec spec;
  spec.word_error_rate = 0.088;  // the paper's pen-machine rate
  std::string big;
  for (int i = 0; i < 3000; ++i) big += "word" + std::to_string(i % 50) + " ";
  const std::string corrupted = corrupt_text(big, spec, rng);
  const double rate = word_error_fraction(big, corrupted);
  EXPECT_NEAR(rate, 0.088, 0.025);
}

TEST(SynonymTest, ItemsWellFormed) {
  auto corpus = generate_corpus(small_spec());
  auto items = make_synonym_test(corpus, 10, 5);
  ASSERT_FALSE(items.empty());
  for (const auto& item : items) {
    EXPECT_EQ(item.choices.size(), 4u);
    EXPECT_LT(item.correct, 4u);
    // The stem is never among the choices.
    for (const auto& c : item.choices) EXPECT_NE(c, item.stem);
    // Choices are distinct.
    std::set<std::string> uniq(item.choices.begin(), item.choices.end());
    EXPECT_EQ(uniq.size(), 4u);
  }
}

TEST(SynonymTest, CorrectChoiceSharesConcept) {
  auto spec = small_spec();
  spec.polysemy_prob = 0.0;
  auto corpus = generate_corpus(spec);
  auto items = make_synonym_test(corpus, 10, 6);
  for (const auto& item : items) {
    // Find the stem's concept; the correct choice must be its form 0.
    bool verified = false;
    for (std::size_t c = 0; c < corpus.concept_forms.size(); ++c) {
      if (corpus.concept_forms[c].size() >= 2 &&
          corpus.concept_forms[c][1] == item.stem) {
        EXPECT_EQ(item.choices[item.correct], corpus.concept_forms[c][0]);
        verified = true;
      }
    }
    EXPECT_TRUE(verified);
  }
}

TEST(Spelling, NgramsIncludeBoundaries) {
  auto grams = word_ngrams("cat");
  // "#cat#": bigrams #c ca at t#, trigrams #ca cat at#.
  EXPECT_EQ(grams.size(), 7u);
  EXPECT_EQ(grams.front(), "#c");
  EXPECT_EQ(grams.back(), "at#");
}

TEST(Spelling, CorrectsSingleTypo) {
  std::vector<std::string> lexicon = {
      "retrieval", "indexing",  "semantic", "latent",   "matrix",
      "singular",  "document",  "query",    "vector",   "factor",
      "updating",  "folding",   "culture",  "pressure", "patients"};
  auto model = build_spelling_model(lexicon, 8);
  auto suggestions = suggest_corrections(model, "retreival", 3);  // swapped
  ASSERT_FALSE(suggestions.empty());
  EXPECT_EQ(suggestions[0].word, "retrieval");
  suggestions = suggest_corrections(model, "semantik", 3);
  ASSERT_FALSE(suggestions.empty());
  EXPECT_EQ(suggestions[0].word, "semantic");
}

TEST(Spelling, ExactWordScoresHighest) {
  std::vector<std::string> lexicon = {"alpha", "beta", "gamma", "delta"};
  auto model = build_spelling_model(lexicon, 4);
  auto suggestions = suggest_corrections(model, "gamma", 1);
  ASSERT_EQ(suggestions.size(), 1u);
  EXPECT_EQ(suggestions[0].word, "gamma");
  EXPECT_GT(suggestions[0].cosine, 0.99);
}

TEST(SparseRandom, DensityApproximatelyMet) {
  auto a = random_sparse_matrix(200, 100, 0.05, 42);
  EXPECT_EQ(a.rows(), 200u);
  EXPECT_EQ(a.cols(), 100u);
  EXPECT_NEAR(a.density(), 0.05, 0.01);
  for (double v : a.values()) EXPECT_GE(v, 1.0);
}

TEST(SparseRandom, Deterministic) {
  auto a = random_sparse_matrix(50, 40, 0.1, 7);
  auto b = random_sparse_matrix(50, 40, 0.1, 7);
  EXPECT_EQ(a.nnz(), b.nnz());
  EXPECT_LT(la::max_abs_diff(a.to_dense(), b.to_dense()), 1e-15);
}

}  // namespace
