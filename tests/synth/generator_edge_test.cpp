// Edge-case coverage for the synthetic generators: degenerate specs,
// knob monotonicity, and option interactions.

#include <gtest/gtest.h>

#include <cctype>
#include <set>

#include "synth/bilingual.hpp"
#include "synth/corpus.hpp"
#include "synth/spelling.hpp"
#include "text/parser.hpp"

namespace {

using namespace lsi;
using namespace lsi::synth;

TEST(CorpusEdge, SingleTopicSingleDoc) {
  CorpusSpec spec;
  spec.topics = 1;
  spec.concepts_per_topic = 3;
  spec.docs_per_topic = 1;
  spec.queries_per_topic = 1;
  spec.shared_concepts = 0;
  spec.seed = 1;
  auto corpus = generate_corpus(spec);
  EXPECT_EQ(corpus.docs.size(), 1u);
  EXPECT_EQ(corpus.queries.size(), 1u);
  EXPECT_EQ(corpus.queries[0].relevant.size(), 1u);
  EXPECT_FALSE(corpus.docs[0].body.empty());
}

TEST(CorpusEdge, NoGeneralVocabulary) {
  CorpusSpec spec;
  spec.topics = 3;
  spec.shared_concepts = 0;
  spec.general_prob = 0.9;  // must be ignored with no shared concepts
  spec.docs_per_topic = 4;
  spec.seed = 2;
  auto corpus = generate_corpus(spec);
  for (const auto& d : corpus.docs) {
    EXPECT_EQ(d.body.find('g'), std::string::npos)
        << "general token leaked: " << d.body;
  }
}

TEST(CorpusEdge, SingleFormDisablesSynonymy) {
  CorpusSpec spec;
  spec.topics = 2;
  spec.forms_per_concept = 1;
  spec.query_offform_prob = 1.0;  // nothing rarer to pick
  spec.docs_per_topic = 5;
  spec.seed = 3;
  auto corpus = generate_corpus(spec);
  for (const auto& forms : corpus.concept_forms) {
    EXPECT_EQ(forms.size(), 1u);
  }
  EXPECT_FALSE(corpus.queries.empty());
}

TEST(CorpusEdge, OwnTopicProbOneMeansNoLeakage) {
  CorpusSpec spec;
  spec.topics = 4;
  spec.own_topic_prob = 1.0;
  spec.general_prob = 0.0;
  spec.polysemy_prob = 0.0;
  spec.docs_per_topic = 6;
  spec.seed = 4;
  auto corpus = generate_corpus(spec);
  // Every topical token of a topic-t document must belong to topic t.
  for (std::size_t d = 0; d < corpus.docs.size(); ++d) {
    const std::size_t topic = corpus.doc_topics[d];
    std::set<std::string> own;
    for (std::size_t c = 0; c < corpus.concept_forms.size(); ++c) {
      if (corpus.concept_topic[c] == topic) {
        own.insert(corpus.concept_forms[c].begin(),
                   corpus.concept_forms[c].end());
      }
    }
    text::ParserOptions popts;
    popts.remove_stopwords = false;
    for (const auto& token : text::tokenize(corpus.docs[d].body)) {
      EXPECT_TRUE(own.count(token)) << token << " leaked into topic "
                                    << topic;
    }
  }
}

TEST(CorpusEdge, MorphologicalFormsAreSuffixedVariants) {
  CorpusSpec spec;
  spec.topics = 2;
  spec.forms_per_concept = 4;
  spec.morphological_forms = true;
  spec.polysemy_prob = 0.0;
  spec.seed = 5;
  auto corpus = generate_corpus(spec);
  for (const auto& forms : corpus.concept_forms) {
    ASSERT_EQ(forms.size(), 4u);
    const std::string& root = forms[0];
    EXPECT_EQ(forms[1], root + "s");
    EXPECT_EQ(forms[2], root + "ed");
    EXPECT_EQ(forms[3], root + "ing");
    // Roots are alphabetic (so the Porter stemmer's vowel logic applies).
    for (char c : root) EXPECT_TRUE(std::isalpha(c)) << root;
  }
}

TEST(CorpusEdge, PetWordsIncreaseMaxTermFrequency) {
  CorpusSpec base;
  base.topics = 4;
  base.docs_per_topic = 10;
  base.mean_doc_len = 60;
  base.general_prob = 0.6;
  base.shared_concepts = 30;
  base.seed = 6;
  CorpusSpec bursty = base;
  bursty.pet_word_prob = 0.8;

  auto max_tf = [](const SyntheticCorpus& corpus) {
    auto tdm = text::build_term_document_matrix(corpus.docs, {});
    double best = 0.0;
    for (double v : tdm.counts.values()) best = std::max(best, v);
    return best;
  };
  EXPECT_GT(max_tf(generate_corpus(bursty)),
            max_tf(generate_corpus(base)));
}

TEST(BilingualEdge, TopicMixingProducesCrossTopicTokens) {
  BilingualSpec pure;
  pure.topics = 4;
  pure.docs_per_topic = 6;
  pure.own_topic_prob = 1.0;
  pure.seed = 7;
  BilingualSpec mixed = pure;
  mixed.own_topic_prob = 0.4;

  auto distinct_concepts_in_doc0 = [](const BilingualCorpus& corpus) {
    std::set<std::string> tokens;
    for (const auto& t : text::tokenize(corpus.mono_a[0].body)) {
      tokens.insert(t.substr(0, t.find('f')));  // concept prefix "aNN"
    }
    return tokens.size();
  };
  EXPECT_GT(distinct_concepts_in_doc0(generate_bilingual_corpus(mixed)),
            distinct_concepts_in_doc0(generate_bilingual_corpus(pure)) / 2);
}

TEST(SpellingEdge, SingleCharacterWord) {
  auto grams = word_ngrams("a");
  // "#a#": bigrams #a a#, trigram #a#.
  EXPECT_EQ(grams.size(), 3u);
}

TEST(SpellingEdge, UnknownNgramsYieldNoCrash) {
  auto model = build_spelling_model({"alpha", "beta"}, 2);
  auto suggestions = suggest_corrections(model, "zzzzqqq", 2);
  // All n-grams unknown: projection is zero; cosines are zero; no crash.
  for (const auto& s : suggestions) EXPECT_DOUBLE_EQ(s.cosine, 0.0);
}

}  // namespace
