file(REMOVE_RECURSE
  "../bench/bench_update_ablation"
  "../bench/bench_update_ablation.pdb"
  "CMakeFiles/bench_update_ablation.dir/bench_update_ablation.cpp.o"
  "CMakeFiles/bench_update_ablation.dir/bench_update_ablation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_update_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
