# Empty dependencies file for bench_update_ablation.
# This may be replaced when dependencies are built.
