file(REMOVE_RECURSE
  "../bench/bench_spelling"
  "../bench/bench_spelling.pdb"
  "CMakeFiles/bench_spelling.dir/bench_spelling.cpp.o"
  "CMakeFiles/bench_spelling.dir/bench_spelling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_spelling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
