# Empty dependencies file for bench_spelling.
# This may be replaced when dependencies are built.
