file(REMOVE_RECURSE
  "../bench/bench_weighting"
  "../bench/bench_weighting.pdb"
  "CMakeFiles/bench_weighting.dir/bench_weighting.cpp.o"
  "CMakeFiles/bench_weighting.dir/bench_weighting.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_weighting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
