# Empty dependencies file for bench_weighting.
# This may be replaced when dependencies are built.
