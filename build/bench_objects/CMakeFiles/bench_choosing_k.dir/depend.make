# Empty dependencies file for bench_choosing_k.
# This may be replaced when dependencies are built.
