file(REMOVE_RECURSE
  "../bench/bench_choosing_k"
  "../bench/bench_choosing_k.pdb"
  "CMakeFiles/bench_choosing_k.dir/bench_choosing_k.cpp.o"
  "CMakeFiles/bench_choosing_k.dir/bench_choosing_k.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_choosing_k.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
