file(REMOVE_RECURSE
  "../bench/bench_realtime_updating"
  "../bench/bench_realtime_updating.pdb"
  "CMakeFiles/bench_realtime_updating.dir/bench_realtime_updating.cpp.o"
  "CMakeFiles/bench_realtime_updating.dir/bench_realtime_updating.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_realtime_updating.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
