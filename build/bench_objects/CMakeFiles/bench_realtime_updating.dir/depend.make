# Empty dependencies file for bench_realtime_updating.
# This may be replaced when dependencies are built.
