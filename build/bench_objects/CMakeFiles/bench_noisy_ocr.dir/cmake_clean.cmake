file(REMOVE_RECURSE
  "../bench/bench_noisy_ocr"
  "../bench/bench_noisy_ocr.pdb"
  "CMakeFiles/bench_noisy_ocr.dir/bench_noisy_ocr.cpp.o"
  "CMakeFiles/bench_noisy_ocr.dir/bench_noisy_ocr.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_noisy_ocr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
