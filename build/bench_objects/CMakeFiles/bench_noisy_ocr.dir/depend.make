# Empty dependencies file for bench_noisy_ocr.
# This may be replaced when dependencies are built.
