file(REMOVE_RECURSE
  "../bench/bench_filtering"
  "../bench/bench_filtering.pdb"
  "CMakeFiles/bench_filtering.dir/bench_filtering.cpp.o"
  "CMakeFiles/bench_filtering.dir/bench_filtering.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_filtering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
