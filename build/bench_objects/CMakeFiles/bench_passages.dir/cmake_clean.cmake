file(REMOVE_RECURSE
  "../bench/bench_passages"
  "../bench/bench_passages.pdb"
  "CMakeFiles/bench_passages.dir/bench_passages.cpp.o"
  "CMakeFiles/bench_passages.dir/bench_passages.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_passages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
