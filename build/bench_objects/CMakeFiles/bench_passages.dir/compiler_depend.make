# Empty compiler generated dependencies file for bench_passages.
# This may be replaced when dependencies are built.
