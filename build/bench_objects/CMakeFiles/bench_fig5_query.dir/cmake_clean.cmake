file(REMOVE_RECURSE
  "../bench/bench_fig5_query"
  "../bench/bench_fig5_query.pdb"
  "CMakeFiles/bench_fig5_query.dir/bench_fig5_query.cpp.o"
  "CMakeFiles/bench_fig5_query.dir/bench_fig5_query.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
