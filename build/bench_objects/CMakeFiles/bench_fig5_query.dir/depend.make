# Empty dependencies file for bench_fig5_query.
# This may be replaced when dependencies are built.
