file(REMOVE_RECURSE
  "../bench/bench_stemming_ablation"
  "../bench/bench_stemming_ablation.pdb"
  "CMakeFiles/bench_stemming_ablation.dir/bench_stemming_ablation.cpp.o"
  "CMakeFiles/bench_stemming_ablation.dir/bench_stemming_ablation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_stemming_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
