# Empty compiler generated dependencies file for bench_stemming_ablation.
# This may be replaced when dependencies are built.
