file(REMOVE_RECURSE
  "../bench/bench_table3_parsing"
  "../bench/bench_table3_parsing.pdb"
  "CMakeFiles/bench_table3_parsing.dir/bench_table3_parsing.cpp.o"
  "CMakeFiles/bench_table3_parsing.dir/bench_table3_parsing.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_parsing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
