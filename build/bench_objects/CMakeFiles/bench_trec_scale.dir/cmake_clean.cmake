file(REMOVE_RECURSE
  "../bench/bench_trec_scale"
  "../bench/bench_trec_scale.pdb"
  "CMakeFiles/bench_trec_scale.dir/bench_trec_scale.cpp.o"
  "CMakeFiles/bench_trec_scale.dir/bench_trec_scale.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_trec_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
