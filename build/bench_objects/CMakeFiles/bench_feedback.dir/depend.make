# Empty dependencies file for bench_feedback.
# This may be replaced when dependencies are built.
