file(REMOVE_RECURSE
  "../bench/bench_feedback"
  "../bench/bench_feedback.pdb"
  "CMakeFiles/bench_feedback.dir/bench_feedback.cpp.o"
  "CMakeFiles/bench_feedback.dir/bench_feedback.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_feedback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
