# Empty dependencies file for bench_fig8_recompute.
# This may be replaced when dependencies are built.
