file(REMOVE_RECURSE
  "../bench/bench_fig8_recompute"
  "../bench/bench_fig8_recompute.pdb"
  "CMakeFiles/bench_fig8_recompute.dir/bench_fig8_recompute.cpp.o"
  "CMakeFiles/bench_fig8_recompute.dir/bench_fig8_recompute.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_recompute.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
