# Empty compiler generated dependencies file for bench_near_neighbors.
# This may be replaced when dependencies are built.
