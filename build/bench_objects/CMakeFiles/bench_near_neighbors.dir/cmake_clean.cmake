file(REMOVE_RECURSE
  "../bench/bench_near_neighbors"
  "../bench/bench_near_neighbors.pdb"
  "CMakeFiles/bench_near_neighbors.dir/bench_near_neighbors.cpp.o"
  "CMakeFiles/bench_near_neighbors.dir/bench_near_neighbors.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_near_neighbors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
