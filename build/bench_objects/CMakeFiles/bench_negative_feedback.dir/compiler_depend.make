# Empty compiler generated dependencies file for bench_negative_feedback.
# This may be replaced when dependencies are built.
