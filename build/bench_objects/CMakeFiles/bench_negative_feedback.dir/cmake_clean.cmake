file(REMOVE_RECURSE
  "../bench/bench_negative_feedback"
  "../bench/bench_negative_feedback.pdb"
  "CMakeFiles/bench_negative_feedback.dir/bench_negative_feedback.cpp.o"
  "CMakeFiles/bench_negative_feedback.dir/bench_negative_feedback.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_negative_feedback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
