# Empty dependencies file for bench_fig9_svdupdate.
# This may be replaced when dependencies are built.
