file(REMOVE_RECURSE
  "../bench/bench_fig9_svdupdate"
  "../bench/bench_fig9_svdupdate.pdb"
  "CMakeFiles/bench_fig9_svdupdate.dir/bench_fig9_svdupdate.cpp.o"
  "CMakeFiles/bench_fig9_svdupdate.dir/bench_fig9_svdupdate.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_svdupdate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
