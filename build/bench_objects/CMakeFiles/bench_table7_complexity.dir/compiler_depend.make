# Empty compiler generated dependencies file for bench_table7_complexity.
# This may be replaced when dependencies are built.
