file(REMOVE_RECURSE
  "../bench/bench_table7_complexity"
  "../bench/bench_table7_complexity.pdb"
  "CMakeFiles/bench_table7_complexity.dir/bench_table7_complexity.cpp.o"
  "CMakeFiles/bench_table7_complexity.dir/bench_table7_complexity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_complexity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
