file(REMOVE_RECURSE
  "../bench/bench_synonym_toefl"
  "../bench/bench_synonym_toefl.pdb"
  "CMakeFiles/bench_synonym_toefl.dir/bench_synonym_toefl.cpp.o"
  "CMakeFiles/bench_synonym_toefl.dir/bench_synonym_toefl.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_synonym_toefl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
