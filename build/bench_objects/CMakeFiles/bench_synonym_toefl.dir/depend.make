# Empty dependencies file for bench_synonym_toefl.
# This may be replaced when dependencies are built.
