# Empty compiler generated dependencies file for bench_retrieval_vs_smart.
# This may be replaced when dependencies are built.
