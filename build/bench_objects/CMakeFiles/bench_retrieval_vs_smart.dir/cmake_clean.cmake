file(REMOVE_RECURSE
  "../bench/bench_retrieval_vs_smart"
  "../bench/bench_retrieval_vs_smart.pdb"
  "CMakeFiles/bench_retrieval_vs_smart.dir/bench_retrieval_vs_smart.cpp.o"
  "CMakeFiles/bench_retrieval_vs_smart.dir/bench_retrieval_vs_smart.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_retrieval_vs_smart.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
