file(REMOVE_RECURSE
  "../bench/bench_orthogonality"
  "../bench/bench_orthogonality.pdb"
  "CMakeFiles/bench_orthogonality.dir/bench_orthogonality.cpp.o"
  "CMakeFiles/bench_orthogonality.dir/bench_orthogonality.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_orthogonality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
