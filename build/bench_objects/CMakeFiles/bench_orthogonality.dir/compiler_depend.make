# Empty compiler generated dependencies file for bench_orthogonality.
# This may be replaced when dependencies are built.
