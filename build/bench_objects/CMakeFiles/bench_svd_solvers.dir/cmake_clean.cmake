file(REMOVE_RECURSE
  "../bench/bench_svd_solvers"
  "../bench/bench_svd_solvers.pdb"
  "CMakeFiles/bench_svd_solvers.dir/bench_svd_solvers.cpp.o"
  "CMakeFiles/bench_svd_solvers.dir/bench_svd_solvers.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_svd_solvers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
