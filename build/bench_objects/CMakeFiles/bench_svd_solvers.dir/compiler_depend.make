# Empty compiler generated dependencies file for bench_svd_solvers.
# This may be replaced when dependencies are built.
