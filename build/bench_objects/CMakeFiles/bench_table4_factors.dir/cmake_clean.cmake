file(REMOVE_RECURSE
  "../bench/bench_table4_factors"
  "../bench/bench_table4_factors.pdb"
  "CMakeFiles/bench_table4_factors.dir/bench_table4_factors.cpp.o"
  "CMakeFiles/bench_table4_factors.dir/bench_table4_factors.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_factors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
