file(REMOVE_RECURSE
  "../bench/bench_fig4_plot"
  "../bench/bench_fig4_plot.pdb"
  "CMakeFiles/bench_fig4_plot.dir/bench_fig4_plot.cpp.o"
  "CMakeFiles/bench_fig4_plot.dir/bench_fig4_plot.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_plot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
