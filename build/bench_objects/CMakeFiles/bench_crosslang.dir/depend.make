# Empty dependencies file for bench_crosslang.
# This may be replaced when dependencies are built.
