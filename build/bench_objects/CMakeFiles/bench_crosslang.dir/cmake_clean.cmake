file(REMOVE_RECURSE
  "../bench/bench_crosslang"
  "../bench/bench_crosslang.pdb"
  "CMakeFiles/bench_crosslang.dir/bench_crosslang.cpp.o"
  "CMakeFiles/bench_crosslang.dir/bench_crosslang.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_crosslang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
