# Empty compiler generated dependencies file for bench_lanczos_perf.
# This may be replaced when dependencies are built.
