file(REMOVE_RECURSE
  "../bench/bench_lanczos_perf"
  "../bench/bench_lanczos_perf.pdb"
  "CMakeFiles/bench_lanczos_perf.dir/bench_lanczos_perf.cpp.o"
  "CMakeFiles/bench_lanczos_perf.dir/bench_lanczos_perf.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lanczos_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
