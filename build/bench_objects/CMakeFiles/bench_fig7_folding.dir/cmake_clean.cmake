file(REMOVE_RECURSE
  "../bench/bench_fig7_folding"
  "../bench/bench_fig7_folding.pdb"
  "CMakeFiles/bench_fig7_folding.dir/bench_fig7_folding.cpp.o"
  "CMakeFiles/bench_fig7_folding.dir/bench_fig7_folding.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_folding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
