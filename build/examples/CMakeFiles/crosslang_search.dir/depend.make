# Empty dependencies file for crosslang_search.
# This may be replaced when dependencies are built.
