file(REMOVE_RECURSE
  "CMakeFiles/crosslang_search.dir/crosslang_search.cpp.o"
  "CMakeFiles/crosslang_search.dir/crosslang_search.cpp.o.d"
  "crosslang_search"
  "crosslang_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crosslang_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
