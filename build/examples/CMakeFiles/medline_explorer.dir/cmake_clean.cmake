file(REMOVE_RECURSE
  "CMakeFiles/medline_explorer.dir/medline_explorer.cpp.o"
  "CMakeFiles/medline_explorer.dir/medline_explorer.cpp.o.d"
  "medline_explorer"
  "medline_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/medline_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
