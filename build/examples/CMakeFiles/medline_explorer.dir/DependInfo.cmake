
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/medline_explorer.cpp" "examples/CMakeFiles/medline_explorer.dir/medline_explorer.cpp.o" "gcc" "examples/CMakeFiles/medline_explorer.dir/medline_explorer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lsi/CMakeFiles/lsi_core.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/lsi_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/lsi_data.dir/DependInfo.cmake"
  "/root/repo/build/src/weighting/CMakeFiles/lsi_weighting.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/lsi_text.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/lsi_la.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lsi_util.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/lsi_eval.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
