# Empty dependencies file for medline_explorer.
# This may be replaced when dependencies are built.
