file(REMOVE_RECURSE
  "CMakeFiles/reviewer_matching.dir/reviewer_matching.cpp.o"
  "CMakeFiles/reviewer_matching.dir/reviewer_matching.cpp.o.d"
  "reviewer_matching"
  "reviewer_matching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reviewer_matching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
