# Empty compiler generated dependencies file for reviewer_matching.
# This may be replaced when dependencies are built.
