file(REMOVE_RECURSE
  "CMakeFiles/news_filter.dir/news_filter.cpp.o"
  "CMakeFiles/news_filter.dir/news_filter.cpp.o.d"
  "news_filter"
  "news_filter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/news_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
