# Empty compiler generated dependencies file for news_filter.
# This may be replaced when dependencies are built.
