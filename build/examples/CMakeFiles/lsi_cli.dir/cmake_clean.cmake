file(REMOVE_RECURSE
  "CMakeFiles/lsi_cli.dir/lsi_cli.cpp.o"
  "CMakeFiles/lsi_cli.dir/lsi_cli.cpp.o.d"
  "lsi_cli"
  "lsi_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsi_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
