# Empty compiler generated dependencies file for lsi_cli.
# This may be replaced when dependencies are built.
