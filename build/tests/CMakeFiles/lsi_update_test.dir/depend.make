# Empty dependencies file for lsi_update_test.
# This may be replaced when dependencies are built.
