file(REMOVE_RECURSE
  "CMakeFiles/lsi_feedback_test.dir/lsi/feedback_test.cpp.o"
  "CMakeFiles/lsi_feedback_test.dir/lsi/feedback_test.cpp.o.d"
  "lsi_feedback_test"
  "lsi_feedback_test.pdb"
  "lsi_feedback_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsi_feedback_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
