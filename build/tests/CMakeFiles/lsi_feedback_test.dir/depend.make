# Empty dependencies file for lsi_feedback_test.
# This may be replaced when dependencies are built.
