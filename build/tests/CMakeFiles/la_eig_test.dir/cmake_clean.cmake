file(REMOVE_RECURSE
  "CMakeFiles/la_eig_test.dir/la/eig_test.cpp.o"
  "CMakeFiles/la_eig_test.dir/la/eig_test.cpp.o.d"
  "la_eig_test"
  "la_eig_test.pdb"
  "la_eig_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/la_eig_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
