# Empty dependencies file for la_eig_test.
# This may be replaced when dependencies are built.
