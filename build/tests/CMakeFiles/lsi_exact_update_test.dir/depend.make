# Empty dependencies file for lsi_exact_update_test.
# This may be replaced when dependencies are built.
