file(REMOVE_RECURSE
  "CMakeFiles/lsi_exact_update_test.dir/lsi/exact_update_test.cpp.o"
  "CMakeFiles/lsi_exact_update_test.dir/lsi/exact_update_test.cpp.o.d"
  "lsi_exact_update_test"
  "lsi_exact_update_test.pdb"
  "lsi_exact_update_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsi_exact_update_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
