# Empty compiler generated dependencies file for lsi_classify_test.
# This may be replaced when dependencies are built.
