file(REMOVE_RECURSE
  "CMakeFiles/lsi_classify_test.dir/lsi/classify_test.cpp.o"
  "CMakeFiles/lsi_classify_test.dir/lsi/classify_test.cpp.o.d"
  "lsi_classify_test"
  "lsi_classify_test.pdb"
  "lsi_classify_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsi_classify_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
