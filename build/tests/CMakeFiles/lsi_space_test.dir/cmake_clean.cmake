file(REMOVE_RECURSE
  "CMakeFiles/lsi_space_test.dir/lsi/space_test.cpp.o"
  "CMakeFiles/lsi_space_test.dir/lsi/space_test.cpp.o.d"
  "lsi_space_test"
  "lsi_space_test.pdb"
  "lsi_space_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsi_space_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
