# Empty dependencies file for lsi_space_test.
# This may be replaced when dependencies are built.
