file(REMOVE_RECURSE
  "CMakeFiles/lsi_incremental_test.dir/lsi/incremental_test.cpp.o"
  "CMakeFiles/lsi_incremental_test.dir/lsi/incremental_test.cpp.o.d"
  "lsi_incremental_test"
  "lsi_incremental_test.pdb"
  "lsi_incremental_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsi_incremental_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
