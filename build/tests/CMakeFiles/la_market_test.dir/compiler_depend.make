# Empty compiler generated dependencies file for la_market_test.
# This may be replaced when dependencies are built.
