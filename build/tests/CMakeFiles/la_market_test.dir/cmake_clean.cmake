file(REMOVE_RECURSE
  "CMakeFiles/la_market_test.dir/la/market_test.cpp.o"
  "CMakeFiles/la_market_test.dir/la/market_test.cpp.o.d"
  "la_market_test"
  "la_market_test.pdb"
  "la_market_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/la_market_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
