file(REMOVE_RECURSE
  "CMakeFiles/la_subspace_test.dir/la/subspace_test.cpp.o"
  "CMakeFiles/la_subspace_test.dir/la/subspace_test.cpp.o.d"
  "la_subspace_test"
  "la_subspace_test.pdb"
  "la_subspace_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/la_subspace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
