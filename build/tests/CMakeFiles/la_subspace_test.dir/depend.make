# Empty dependencies file for la_subspace_test.
# This may be replaced when dependencies are built.
