# Empty dependencies file for lsi_index_test.
# This may be replaced when dependencies are built.
