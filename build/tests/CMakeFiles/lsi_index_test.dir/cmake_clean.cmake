file(REMOVE_RECURSE
  "CMakeFiles/lsi_index_test.dir/lsi/index_test.cpp.o"
  "CMakeFiles/lsi_index_test.dir/lsi/index_test.cpp.o.d"
  "lsi_index_test"
  "lsi_index_test.pdb"
  "lsi_index_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsi_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
