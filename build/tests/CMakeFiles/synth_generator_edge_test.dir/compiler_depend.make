# Empty compiler generated dependencies file for synth_generator_edge_test.
# This may be replaced when dependencies are built.
