file(REMOVE_RECURSE
  "CMakeFiles/synth_generator_edge_test.dir/synth/generator_edge_test.cpp.o"
  "CMakeFiles/synth_generator_edge_test.dir/synth/generator_edge_test.cpp.o.d"
  "synth_generator_edge_test"
  "synth_generator_edge_test.pdb"
  "synth_generator_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synth_generator_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
