file(REMOVE_RECURSE
  "CMakeFiles/la_csr_test.dir/la/csr_test.cpp.o"
  "CMakeFiles/la_csr_test.dir/la/csr_test.cpp.o.d"
  "la_csr_test"
  "la_csr_test.pdb"
  "la_csr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/la_csr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
