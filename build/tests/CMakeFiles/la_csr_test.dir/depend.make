# Empty dependencies file for la_csr_test.
# This may be replaced when dependencies are built.
