file(REMOVE_RECURSE
  "CMakeFiles/lsi_folding_test.dir/lsi/folding_test.cpp.o"
  "CMakeFiles/lsi_folding_test.dir/lsi/folding_test.cpp.o.d"
  "lsi_folding_test"
  "lsi_folding_test.pdb"
  "lsi_folding_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsi_folding_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
