# Empty compiler generated dependencies file for lsi_folding_test.
# This may be replaced when dependencies are built.
