file(REMOVE_RECURSE
  "CMakeFiles/text_stemmer_test.dir/text/stemmer_test.cpp.o"
  "CMakeFiles/text_stemmer_test.dir/text/stemmer_test.cpp.o.d"
  "text_stemmer_test"
  "text_stemmer_test.pdb"
  "text_stemmer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/text_stemmer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
