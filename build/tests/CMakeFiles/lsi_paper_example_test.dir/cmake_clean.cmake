file(REMOVE_RECURSE
  "CMakeFiles/lsi_paper_example_test.dir/lsi/paper_example_test.cpp.o"
  "CMakeFiles/lsi_paper_example_test.dir/lsi/paper_example_test.cpp.o.d"
  "lsi_paper_example_test"
  "lsi_paper_example_test.pdb"
  "lsi_paper_example_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsi_paper_example_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
