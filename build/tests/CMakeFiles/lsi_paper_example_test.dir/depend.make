# Empty dependencies file for lsi_paper_example_test.
# This may be replaced when dependencies are built.
