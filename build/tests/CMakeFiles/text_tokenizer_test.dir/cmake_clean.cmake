file(REMOVE_RECURSE
  "CMakeFiles/text_tokenizer_test.dir/text/tokenizer_test.cpp.o"
  "CMakeFiles/text_tokenizer_test.dir/text/tokenizer_test.cpp.o.d"
  "text_tokenizer_test"
  "text_tokenizer_test.pdb"
  "text_tokenizer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/text_tokenizer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
