file(REMOVE_RECURSE
  "CMakeFiles/la_lanczos_test.dir/la/lanczos_test.cpp.o"
  "CMakeFiles/la_lanczos_test.dir/la/lanczos_test.cpp.o.d"
  "la_lanczos_test"
  "la_lanczos_test.pdb"
  "la_lanczos_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/la_lanczos_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
