# Empty dependencies file for la_lanczos_test.
# This may be replaced when dependencies are built.
