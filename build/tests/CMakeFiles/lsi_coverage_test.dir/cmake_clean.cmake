file(REMOVE_RECURSE
  "CMakeFiles/lsi_coverage_test.dir/lsi/coverage_test.cpp.o"
  "CMakeFiles/lsi_coverage_test.dir/lsi/coverage_test.cpp.o.d"
  "lsi_coverage_test"
  "lsi_coverage_test.pdb"
  "lsi_coverage_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsi_coverage_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
