# Empty dependencies file for lsi_coverage_test.
# This may be replaced when dependencies are built.
