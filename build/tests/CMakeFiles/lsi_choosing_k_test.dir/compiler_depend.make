# Empty compiler generated dependencies file for lsi_choosing_k_test.
# This may be replaced when dependencies are built.
