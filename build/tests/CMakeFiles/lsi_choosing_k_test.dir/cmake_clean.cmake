file(REMOVE_RECURSE
  "CMakeFiles/lsi_choosing_k_test.dir/lsi/choosing_k_test.cpp.o"
  "CMakeFiles/lsi_choosing_k_test.dir/lsi/choosing_k_test.cpp.o.d"
  "lsi_choosing_k_test"
  "lsi_choosing_k_test.pdb"
  "lsi_choosing_k_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsi_choosing_k_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
