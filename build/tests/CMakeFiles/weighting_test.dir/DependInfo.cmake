
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/weighting/weighting_test.cpp" "tests/CMakeFiles/weighting_test.dir/weighting/weighting_test.cpp.o" "gcc" "tests/CMakeFiles/weighting_test.dir/weighting/weighting_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lsi/CMakeFiles/lsi_core.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/lsi_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/lsi_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/lsi_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/lsi_data.dir/DependInfo.cmake"
  "/root/repo/build/src/weighting/CMakeFiles/lsi_weighting.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/lsi_text.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/lsi_la.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lsi_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
