# Empty compiler generated dependencies file for lsi_multipoint_test.
# This may be replaced when dependencies are built.
