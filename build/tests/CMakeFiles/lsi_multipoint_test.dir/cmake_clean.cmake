file(REMOVE_RECURSE
  "CMakeFiles/lsi_multipoint_test.dir/lsi/multipoint_test.cpp.o"
  "CMakeFiles/lsi_multipoint_test.dir/lsi/multipoint_test.cpp.o.d"
  "lsi_multipoint_test"
  "lsi_multipoint_test.pdb"
  "lsi_multipoint_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsi_multipoint_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
