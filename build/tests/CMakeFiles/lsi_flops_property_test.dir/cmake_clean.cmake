file(REMOVE_RECURSE
  "CMakeFiles/lsi_flops_property_test.dir/lsi/flops_property_test.cpp.o"
  "CMakeFiles/lsi_flops_property_test.dir/lsi/flops_property_test.cpp.o.d"
  "lsi_flops_property_test"
  "lsi_flops_property_test.pdb"
  "lsi_flops_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsi_flops_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
