# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for lsi_flops_property_test.
