# Empty dependencies file for lsi_flops_property_test.
# This may be replaced when dependencies are built.
