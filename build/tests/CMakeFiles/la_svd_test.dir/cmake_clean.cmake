file(REMOVE_RECURSE
  "CMakeFiles/la_svd_test.dir/la/svd_test.cpp.o"
  "CMakeFiles/la_svd_test.dir/la/svd_test.cpp.o.d"
  "la_svd_test"
  "la_svd_test.pdb"
  "la_svd_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/la_svd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
