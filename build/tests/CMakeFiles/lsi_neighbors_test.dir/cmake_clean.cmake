file(REMOVE_RECURSE
  "CMakeFiles/lsi_neighbors_test.dir/lsi/neighbors_test.cpp.o"
  "CMakeFiles/lsi_neighbors_test.dir/lsi/neighbors_test.cpp.o.d"
  "lsi_neighbors_test"
  "lsi_neighbors_test.pdb"
  "lsi_neighbors_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsi_neighbors_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
