file(REMOVE_RECURSE
  "CMakeFiles/text_passages_test.dir/text/passages_test.cpp.o"
  "CMakeFiles/text_passages_test.dir/text/passages_test.cpp.o.d"
  "text_passages_test"
  "text_passages_test.pdb"
  "text_passages_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/text_passages_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
