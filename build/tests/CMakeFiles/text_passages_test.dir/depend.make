# Empty dependencies file for text_passages_test.
# This may be replaced when dependencies are built.
