file(REMOVE_RECURSE
  "CMakeFiles/lsi_weighting.dir/weighting.cpp.o"
  "CMakeFiles/lsi_weighting.dir/weighting.cpp.o.d"
  "liblsi_weighting.a"
  "liblsi_weighting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsi_weighting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
