# Empty compiler generated dependencies file for lsi_weighting.
# This may be replaced when dependencies are built.
