file(REMOVE_RECURSE
  "liblsi_weighting.a"
)
