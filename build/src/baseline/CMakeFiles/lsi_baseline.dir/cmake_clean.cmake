file(REMOVE_RECURSE
  "CMakeFiles/lsi_baseline.dir/lexical.cpp.o"
  "CMakeFiles/lsi_baseline.dir/lexical.cpp.o.d"
  "CMakeFiles/lsi_baseline.dir/vector_model.cpp.o"
  "CMakeFiles/lsi_baseline.dir/vector_model.cpp.o.d"
  "liblsi_baseline.a"
  "liblsi_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsi_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
