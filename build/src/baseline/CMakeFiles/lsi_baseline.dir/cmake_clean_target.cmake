file(REMOVE_RECURSE
  "liblsi_baseline.a"
)
