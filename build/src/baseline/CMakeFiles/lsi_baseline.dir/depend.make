# Empty dependencies file for lsi_baseline.
# This may be replaced when dependencies are built.
