file(REMOVE_RECURSE
  "CMakeFiles/lsi_core.dir/classify.cpp.o"
  "CMakeFiles/lsi_core.dir/classify.cpp.o.d"
  "CMakeFiles/lsi_core.dir/feedback.cpp.o"
  "CMakeFiles/lsi_core.dir/feedback.cpp.o.d"
  "CMakeFiles/lsi_core.dir/flops.cpp.o"
  "CMakeFiles/lsi_core.dir/flops.cpp.o.d"
  "CMakeFiles/lsi_core.dir/folding.cpp.o"
  "CMakeFiles/lsi_core.dir/folding.cpp.o.d"
  "CMakeFiles/lsi_core.dir/incremental.cpp.o"
  "CMakeFiles/lsi_core.dir/incremental.cpp.o.d"
  "CMakeFiles/lsi_core.dir/io.cpp.o"
  "CMakeFiles/lsi_core.dir/io.cpp.o.d"
  "CMakeFiles/lsi_core.dir/lsi_index.cpp.o"
  "CMakeFiles/lsi_core.dir/lsi_index.cpp.o.d"
  "CMakeFiles/lsi_core.dir/neighbors.cpp.o"
  "CMakeFiles/lsi_core.dir/neighbors.cpp.o.d"
  "CMakeFiles/lsi_core.dir/retrieval.cpp.o"
  "CMakeFiles/lsi_core.dir/retrieval.cpp.o.d"
  "CMakeFiles/lsi_core.dir/semantic_space.cpp.o"
  "CMakeFiles/lsi_core.dir/semantic_space.cpp.o.d"
  "CMakeFiles/lsi_core.dir/update.cpp.o"
  "CMakeFiles/lsi_core.dir/update.cpp.o.d"
  "liblsi_core.a"
  "liblsi_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsi_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
