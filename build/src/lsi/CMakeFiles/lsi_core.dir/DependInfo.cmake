
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lsi/classify.cpp" "src/lsi/CMakeFiles/lsi_core.dir/classify.cpp.o" "gcc" "src/lsi/CMakeFiles/lsi_core.dir/classify.cpp.o.d"
  "/root/repo/src/lsi/feedback.cpp" "src/lsi/CMakeFiles/lsi_core.dir/feedback.cpp.o" "gcc" "src/lsi/CMakeFiles/lsi_core.dir/feedback.cpp.o.d"
  "/root/repo/src/lsi/flops.cpp" "src/lsi/CMakeFiles/lsi_core.dir/flops.cpp.o" "gcc" "src/lsi/CMakeFiles/lsi_core.dir/flops.cpp.o.d"
  "/root/repo/src/lsi/folding.cpp" "src/lsi/CMakeFiles/lsi_core.dir/folding.cpp.o" "gcc" "src/lsi/CMakeFiles/lsi_core.dir/folding.cpp.o.d"
  "/root/repo/src/lsi/incremental.cpp" "src/lsi/CMakeFiles/lsi_core.dir/incremental.cpp.o" "gcc" "src/lsi/CMakeFiles/lsi_core.dir/incremental.cpp.o.d"
  "/root/repo/src/lsi/io.cpp" "src/lsi/CMakeFiles/lsi_core.dir/io.cpp.o" "gcc" "src/lsi/CMakeFiles/lsi_core.dir/io.cpp.o.d"
  "/root/repo/src/lsi/lsi_index.cpp" "src/lsi/CMakeFiles/lsi_core.dir/lsi_index.cpp.o" "gcc" "src/lsi/CMakeFiles/lsi_core.dir/lsi_index.cpp.o.d"
  "/root/repo/src/lsi/neighbors.cpp" "src/lsi/CMakeFiles/lsi_core.dir/neighbors.cpp.o" "gcc" "src/lsi/CMakeFiles/lsi_core.dir/neighbors.cpp.o.d"
  "/root/repo/src/lsi/retrieval.cpp" "src/lsi/CMakeFiles/lsi_core.dir/retrieval.cpp.o" "gcc" "src/lsi/CMakeFiles/lsi_core.dir/retrieval.cpp.o.d"
  "/root/repo/src/lsi/semantic_space.cpp" "src/lsi/CMakeFiles/lsi_core.dir/semantic_space.cpp.o" "gcc" "src/lsi/CMakeFiles/lsi_core.dir/semantic_space.cpp.o.d"
  "/root/repo/src/lsi/update.cpp" "src/lsi/CMakeFiles/lsi_core.dir/update.cpp.o" "gcc" "src/lsi/CMakeFiles/lsi_core.dir/update.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/la/CMakeFiles/lsi_la.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/lsi_text.dir/DependInfo.cmake"
  "/root/repo/build/src/weighting/CMakeFiles/lsi_weighting.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lsi_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
