file(REMOVE_RECURSE
  "liblsi_core.a"
)
