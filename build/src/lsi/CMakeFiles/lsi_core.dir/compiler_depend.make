# Empty compiler generated dependencies file for lsi_core.
# This may be replaced when dependencies are built.
