
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/la/dense.cpp" "src/la/CMakeFiles/lsi_la.dir/dense.cpp.o" "gcc" "src/la/CMakeFiles/lsi_la.dir/dense.cpp.o.d"
  "/root/repo/src/la/jacobi_svd.cpp" "src/la/CMakeFiles/lsi_la.dir/jacobi_svd.cpp.o" "gcc" "src/la/CMakeFiles/lsi_la.dir/jacobi_svd.cpp.o.d"
  "/root/repo/src/la/lanczos.cpp" "src/la/CMakeFiles/lsi_la.dir/lanczos.cpp.o" "gcc" "src/la/CMakeFiles/lsi_la.dir/lanczos.cpp.o.d"
  "/root/repo/src/la/market.cpp" "src/la/CMakeFiles/lsi_la.dir/market.cpp.o" "gcc" "src/la/CMakeFiles/lsi_la.dir/market.cpp.o.d"
  "/root/repo/src/la/qr.cpp" "src/la/CMakeFiles/lsi_la.dir/qr.cpp.o" "gcc" "src/la/CMakeFiles/lsi_la.dir/qr.cpp.o.d"
  "/root/repo/src/la/sparse.cpp" "src/la/CMakeFiles/lsi_la.dir/sparse.cpp.o" "gcc" "src/la/CMakeFiles/lsi_la.dir/sparse.cpp.o.d"
  "/root/repo/src/la/subspace.cpp" "src/la/CMakeFiles/lsi_la.dir/subspace.cpp.o" "gcc" "src/la/CMakeFiles/lsi_la.dir/subspace.cpp.o.d"
  "/root/repo/src/la/tridiag_eig.cpp" "src/la/CMakeFiles/lsi_la.dir/tridiag_eig.cpp.o" "gcc" "src/la/CMakeFiles/lsi_la.dir/tridiag_eig.cpp.o.d"
  "/root/repo/src/la/vector_ops.cpp" "src/la/CMakeFiles/lsi_la.dir/vector_ops.cpp.o" "gcc" "src/la/CMakeFiles/lsi_la.dir/vector_ops.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/lsi_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
