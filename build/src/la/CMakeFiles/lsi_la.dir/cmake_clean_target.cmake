file(REMOVE_RECURSE
  "liblsi_la.a"
)
