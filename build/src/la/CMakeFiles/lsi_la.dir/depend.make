# Empty dependencies file for lsi_la.
# This may be replaced when dependencies are built.
