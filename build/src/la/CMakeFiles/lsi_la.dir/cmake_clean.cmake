file(REMOVE_RECURSE
  "CMakeFiles/lsi_la.dir/dense.cpp.o"
  "CMakeFiles/lsi_la.dir/dense.cpp.o.d"
  "CMakeFiles/lsi_la.dir/jacobi_svd.cpp.o"
  "CMakeFiles/lsi_la.dir/jacobi_svd.cpp.o.d"
  "CMakeFiles/lsi_la.dir/lanczos.cpp.o"
  "CMakeFiles/lsi_la.dir/lanczos.cpp.o.d"
  "CMakeFiles/lsi_la.dir/market.cpp.o"
  "CMakeFiles/lsi_la.dir/market.cpp.o.d"
  "CMakeFiles/lsi_la.dir/qr.cpp.o"
  "CMakeFiles/lsi_la.dir/qr.cpp.o.d"
  "CMakeFiles/lsi_la.dir/sparse.cpp.o"
  "CMakeFiles/lsi_la.dir/sparse.cpp.o.d"
  "CMakeFiles/lsi_la.dir/subspace.cpp.o"
  "CMakeFiles/lsi_la.dir/subspace.cpp.o.d"
  "CMakeFiles/lsi_la.dir/tridiag_eig.cpp.o"
  "CMakeFiles/lsi_la.dir/tridiag_eig.cpp.o.d"
  "CMakeFiles/lsi_la.dir/vector_ops.cpp.o"
  "CMakeFiles/lsi_la.dir/vector_ops.cpp.o.d"
  "liblsi_la.a"
  "liblsi_la.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsi_la.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
