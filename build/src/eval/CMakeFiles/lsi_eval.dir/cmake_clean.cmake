file(REMOVE_RECURSE
  "CMakeFiles/lsi_eval.dir/metrics.cpp.o"
  "CMakeFiles/lsi_eval.dir/metrics.cpp.o.d"
  "CMakeFiles/lsi_eval.dir/significance.cpp.o"
  "CMakeFiles/lsi_eval.dir/significance.cpp.o.d"
  "liblsi_eval.a"
  "liblsi_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsi_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
