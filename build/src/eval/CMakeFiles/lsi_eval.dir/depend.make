# Empty dependencies file for lsi_eval.
# This may be replaced when dependencies are built.
