file(REMOVE_RECURSE
  "liblsi_eval.a"
)
