file(REMOVE_RECURSE
  "CMakeFiles/lsi_util.dir/ascii_plot.cpp.o"
  "CMakeFiles/lsi_util.dir/ascii_plot.cpp.o.d"
  "CMakeFiles/lsi_util.dir/rng.cpp.o"
  "CMakeFiles/lsi_util.dir/rng.cpp.o.d"
  "CMakeFiles/lsi_util.dir/strings.cpp.o"
  "CMakeFiles/lsi_util.dir/strings.cpp.o.d"
  "CMakeFiles/lsi_util.dir/table.cpp.o"
  "CMakeFiles/lsi_util.dir/table.cpp.o.d"
  "CMakeFiles/lsi_util.dir/thread_pool.cpp.o"
  "CMakeFiles/lsi_util.dir/thread_pool.cpp.o.d"
  "liblsi_util.a"
  "liblsi_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsi_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
