# Empty compiler generated dependencies file for lsi_util.
# This may be replaced when dependencies are built.
