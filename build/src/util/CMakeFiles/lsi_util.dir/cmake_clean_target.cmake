file(REMOVE_RECURSE
  "liblsi_util.a"
)
