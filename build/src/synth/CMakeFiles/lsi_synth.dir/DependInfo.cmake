
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/synth/bilingual.cpp" "src/synth/CMakeFiles/lsi_synth.dir/bilingual.cpp.o" "gcc" "src/synth/CMakeFiles/lsi_synth.dir/bilingual.cpp.o.d"
  "/root/repo/src/synth/corpus.cpp" "src/synth/CMakeFiles/lsi_synth.dir/corpus.cpp.o" "gcc" "src/synth/CMakeFiles/lsi_synth.dir/corpus.cpp.o.d"
  "/root/repo/src/synth/noise.cpp" "src/synth/CMakeFiles/lsi_synth.dir/noise.cpp.o" "gcc" "src/synth/CMakeFiles/lsi_synth.dir/noise.cpp.o.d"
  "/root/repo/src/synth/sparse_random.cpp" "src/synth/CMakeFiles/lsi_synth.dir/sparse_random.cpp.o" "gcc" "src/synth/CMakeFiles/lsi_synth.dir/sparse_random.cpp.o.d"
  "/root/repo/src/synth/spelling.cpp" "src/synth/CMakeFiles/lsi_synth.dir/spelling.cpp.o" "gcc" "src/synth/CMakeFiles/lsi_synth.dir/spelling.cpp.o.d"
  "/root/repo/src/synth/synonym_test.cpp" "src/synth/CMakeFiles/lsi_synth.dir/synonym_test.cpp.o" "gcc" "src/synth/CMakeFiles/lsi_synth.dir/synonym_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lsi/CMakeFiles/lsi_core.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/lsi_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/lsi_text.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/lsi_la.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lsi_util.dir/DependInfo.cmake"
  "/root/repo/build/src/weighting/CMakeFiles/lsi_weighting.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
