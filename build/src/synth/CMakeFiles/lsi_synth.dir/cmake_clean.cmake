file(REMOVE_RECURSE
  "CMakeFiles/lsi_synth.dir/bilingual.cpp.o"
  "CMakeFiles/lsi_synth.dir/bilingual.cpp.o.d"
  "CMakeFiles/lsi_synth.dir/corpus.cpp.o"
  "CMakeFiles/lsi_synth.dir/corpus.cpp.o.d"
  "CMakeFiles/lsi_synth.dir/noise.cpp.o"
  "CMakeFiles/lsi_synth.dir/noise.cpp.o.d"
  "CMakeFiles/lsi_synth.dir/sparse_random.cpp.o"
  "CMakeFiles/lsi_synth.dir/sparse_random.cpp.o.d"
  "CMakeFiles/lsi_synth.dir/spelling.cpp.o"
  "CMakeFiles/lsi_synth.dir/spelling.cpp.o.d"
  "CMakeFiles/lsi_synth.dir/synonym_test.cpp.o"
  "CMakeFiles/lsi_synth.dir/synonym_test.cpp.o.d"
  "liblsi_synth.a"
  "liblsi_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsi_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
