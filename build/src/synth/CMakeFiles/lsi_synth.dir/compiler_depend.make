# Empty compiler generated dependencies file for lsi_synth.
# This may be replaced when dependencies are built.
