file(REMOVE_RECURSE
  "liblsi_synth.a"
)
