file(REMOVE_RECURSE
  "CMakeFiles/lsi_data.dir/med_topics.cpp.o"
  "CMakeFiles/lsi_data.dir/med_topics.cpp.o.d"
  "liblsi_data.a"
  "liblsi_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsi_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
