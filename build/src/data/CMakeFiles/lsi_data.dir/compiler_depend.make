# Empty compiler generated dependencies file for lsi_data.
# This may be replaced when dependencies are built.
