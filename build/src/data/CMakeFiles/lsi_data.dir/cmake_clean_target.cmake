file(REMOVE_RECURSE
  "liblsi_data.a"
)
