
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/med_topics.cpp" "src/data/CMakeFiles/lsi_data.dir/med_topics.cpp.o" "gcc" "src/data/CMakeFiles/lsi_data.dir/med_topics.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/la/CMakeFiles/lsi_la.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/lsi_text.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lsi_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
