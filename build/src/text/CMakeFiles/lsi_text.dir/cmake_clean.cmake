file(REMOVE_RECURSE
  "CMakeFiles/lsi_text.dir/parser.cpp.o"
  "CMakeFiles/lsi_text.dir/parser.cpp.o.d"
  "CMakeFiles/lsi_text.dir/passages.cpp.o"
  "CMakeFiles/lsi_text.dir/passages.cpp.o.d"
  "CMakeFiles/lsi_text.dir/stemmer.cpp.o"
  "CMakeFiles/lsi_text.dir/stemmer.cpp.o.d"
  "CMakeFiles/lsi_text.dir/stopwords.cpp.o"
  "CMakeFiles/lsi_text.dir/stopwords.cpp.o.d"
  "CMakeFiles/lsi_text.dir/tokenizer.cpp.o"
  "CMakeFiles/lsi_text.dir/tokenizer.cpp.o.d"
  "CMakeFiles/lsi_text.dir/vocabulary.cpp.o"
  "CMakeFiles/lsi_text.dir/vocabulary.cpp.o.d"
  "liblsi_text.a"
  "liblsi_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsi_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
