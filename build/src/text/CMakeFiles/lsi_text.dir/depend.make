# Empty dependencies file for lsi_text.
# This may be replaced when dependencies are built.
