file(REMOVE_RECURSE
  "liblsi_text.a"
)
