// Quickstart: build an LSI index over a handful of documents, run a query
// that shares no words with its best answer, and inspect term neighbors.
//
//   $ ./examples/quickstart

#include <iostream>

#include "lsi/lsi_index.hpp"

int main() {
  using namespace lsi;

  // 1. A small collection. Note that doc "c1" talks about cars without the
  //    word "automobile" and vice versa — the paper's synonymy example.
  const text::Collection docs = {
      {"c1", "the car dealer sells sedans with a powerful motor and engine"},
      {"c2", "automobile makers improve engine and chassis of every sedan"},
      {"c3", "drivers prefer a car with responsive steering and brakes"},
      {"e1", "elephants roam the savanna in large grey herds"},
      {"e2", "the elephant herd drinks at the river at dusk"},
      {"m1", "the mechanic repairs the motor and replaces brake pads"},
  };

  // 2. Build: parse -> weight (log x entropy) -> truncated SVD.
  core::IndexOptions opts;
  opts.k = 3;                       // 3 latent factors are plenty here
  opts.scheme = weighting::kLogEntropy;
  auto index = core::LsiIndex::try_build(docs, opts).value();
  std::cout << "indexed " << index.doc_labels().size() << " documents, "
            << index.vocabulary().size() << " terms, k = "
            << index.space().k() << "\n\n";

  // 3. Query with a word that appears in only one document; latent
  //    structure still surfaces the other car documents.
  std::cout << "query: \"automobile\"\n";
  for (const auto& r : index.query("automobile")) {
    std::cout << "  " << r.label << "  cosine " << r.cosine << "\n";
  }

  // 4. Term neighborhoods (the automatic thesaurus of Section 5.4).
  std::cout << "\nterms nearest to \"car\":\n";
  for (const auto& [term, cos] : index.similar_terms("car", 5)) {
    std::cout << "  " << term << "  " << cos << "\n";
  }

  // 5. Add a new document without recomputing (folding-in).
  index.add_documents({{"c4", "a hybrid automobile with an electric motor"}},
                      core::AddMethod::kFoldIn);
  std::cout << "\nafter folding in c4, query \"electric car\":\n";
  for (const auto& r : index.query("electric car")) {
    std::cout << "  " << r.label << "  cosine " << r.cosine << "\n";
  }
  return 0;
}
