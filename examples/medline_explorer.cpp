// The paper's running example, end to end: parse the 14 MEDLINE topics of
// Table 2, build the k = 2 space, run the Section 3.1 query, then fold-in
// and SVD-update the Table 5 topics and compare the three updating
// strategies (Sections 3.3-4.4).
//
//   $ ./examples/medline_explorer

#include <iostream>

#include "data/med_topics.hpp"
#include "lsi/folding.hpp"
#include "lsi/io.hpp"
#include "lsi/lsi_index.hpp"
#include "lsi/update.hpp"
#include "util/ascii_plot.hpp"

namespace {

void plot_space(const lsi::core::SemanticSpace& space,
                const lsi::text::Vocabulary& vocab,
                const std::vector<std::string>& labels) {
  lsi::util::AsciiScatter plot(96, 30);
  for (lsi::la::index_t i = 0; i < space.num_terms(); ++i) {
    const auto c = space.term_coords(i);
    plot.add(c[0], c[1], vocab.term(i));
  }
  for (lsi::la::index_t j = 0; j < space.num_docs(); ++j) {
    const auto c = space.doc_coords(j);
    plot.add(c[0], c[1], labels[j]);
  }
  std::cout << plot.render();
}

}  // namespace

int main() {
  using namespace lsi;

  std::cout << "== 1. Parse Table 2 and build the k = 2 space ==\n";
  core::IndexOptions opts;
  opts.parser.min_document_frequency = 2;  // keywords in > 1 topic
  opts.parser.fold_plurals = true;
  opts.scheme = weighting::kRaw;           // the example is unweighted
  opts.k = 2;
  auto index = core::LsiIndex::try_build(data::med_topics(), opts).value();
  core::align_signs_to(index.mutable_space(), data::figure5_u2());
  std::cout << index.vocabulary().size() << " indexed terms, "
            << index.doc_labels().size() << " topics\n\n";
  plot_space(index.space(), index.vocabulary(), index.doc_labels());

  std::cout << "\n== 2. The Section 3.1 query ==\n"
            << "\"" << data::kQueryText << "\"  (only 'age', 'blood', "
            << "'abnormalities' are indexed terms)\n";
  for (const auto& r : index.query(data::kQueryText)) {
    std::cout << "  " << r.label << "  cosine " << r.cosine << "\n";
  }
  std::cout << "M9's 'christmas disease' is haemophilia — the most relevant "
               "topic, containing\nnone of the query words.\n";

  std::cout << "\n== 3. Fold-in M15/M16 (Figure 7) ==\n";
  auto folded = index.space();
  core::fold_in_documents(folded, data::update_document_columns());
  std::cout << "orthogonality loss after folding: "
            << core::orthogonality_loss(folded.v) << "\n";

  std::cout << "\n== 4. SVD-update instead (Figure 9) ==\n";
  auto updated = index.space();
  core::update_documents(updated, data::update_document_columns());
  std::cout << "orthogonality loss after updating: "
            << core::orthogonality_loss(updated.v) << "\n";
  std::cout << "cos(M13, M15): folded " << std::min(
                   core::document_similarity(folded, 12, 14), 1.0)
            << "  updated "
            << core::document_similarity(updated, 12, 14)
            << "  (updating forms the rats cluster; folding cannot)\n";

  std::cout << "\n== 5. Persist and reload the LSI database ==\n";
  core::LsiDatabase db;
  db.space = updated;
  db.vocabulary = index.vocabulary();
  db.doc_labels = index.doc_labels();
  db.doc_labels.push_back("M15");
  db.doc_labels.push_back("M16");
  core::try_save_database_file("medline.lsidb", db).or_throw();
  auto reloaded = core::try_load_database_file("medline.lsidb").value();
  std::cout << "saved + reloaded: " << reloaded.doc_labels.size()
            << " documents, k = " << reloaded.space.k() << "\n";
  return 0;
}
