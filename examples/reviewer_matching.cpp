// Section 5.4 "Matching People Instead of Documents": assign submitted
// papers to reviewers. Reviewers are represented by the texts they have
// written (their profiles are folded into the LSI space); submissions are
// matched to the nearest reviewers under the paper's stated constraints —
// every paper reviewed by `p` reviewers, no reviewer handling more than `r`
// papers.
//
//   $ ./examples/reviewer_matching

#include <algorithm>
#include <iostream>

#include "lsi/lsi_index.hpp"
#include "synth/corpus.hpp"

int main() {
  using namespace lsi;

  // Reviewer corpora: each reviewer has "written" documents from one topic
  // of a synthetic research landscape.
  synth::CorpusSpec spec;
  spec.topics = 6;          // six research areas
  spec.concepts_per_topic = 10;
  spec.docs_per_topic = 12;
  spec.queries_per_topic = 2;  // the queries serve as "submitted abstracts"
  spec.query_len = 6;
  spec.query_offform_prob = 0.4;
  spec.seed = 2025;
  auto corpus = synth::generate_corpus(spec);

  const std::size_t num_reviewers = 12;  // two per area
  const std::size_t papers_per_reviewer_cap = 3;  // r
  const std::size_t reviews_per_paper = 2;        // p

  // Build the space over everything the reviewers have written.
  core::IndexOptions opts;
  opts.scheme = weighting::kLogEntropy;
  opts.k = 30;
  auto index = core::LsiIndex::try_build(corpus.docs, opts).value();

  // Reviewer profiles: mean projection of their writings.
  std::vector<la::Vector> profiles(num_reviewers,
                                   la::Vector(index.space().k(), 0.0));
  std::vector<std::size_t> reviewer_topic(num_reviewers);
  std::vector<int> writings(num_reviewers, 0);
  for (std::size_t d = 0; d < corpus.docs.size(); ++d) {
    // Reviewer id: topic * 2 + (doc parity) — two reviewers per area.
    const std::size_t reviewer = corpus.doc_topics[d] * 2 + (d % 2);
    if (reviewer >= num_reviewers) continue;
    const auto p = index.project(corpus.docs[d].body);
    for (std::size_t i = 0; i < p.size(); ++i) profiles[reviewer][i] += p[i];
    reviewer_topic[reviewer] = corpus.doc_topics[d];
    ++writings[reviewer];
  }
  for (std::size_t rv = 0; rv < num_reviewers; ++rv) {
    if (writings[rv] > 0) {
      for (double& v : profiles[rv]) v /= writings[rv];
    }
  }

  // Submissions = the generated queries (abstract-length texts).
  struct Candidate {
    double cosine;
    std::size_t paper, reviewer;
  };
  std::vector<Candidate> candidates;
  for (std::size_t pa = 0; pa < corpus.queries.size(); ++pa) {
    const auto v = index.project(corpus.queries[pa].text);
    for (std::size_t rv = 0; rv < num_reviewers; ++rv) {
      candidates.push_back({la::cosine(v, profiles[rv]), pa, rv});
    }
  }
  // Greedy constrained assignment by descending similarity.
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.cosine > b.cosine;
            });
  std::vector<std::size_t> paper_load(corpus.queries.size(), 0);
  std::vector<std::size_t> reviewer_load(num_reviewers, 0);
  std::vector<std::vector<std::size_t>> assignment(corpus.queries.size());
  for (const auto& c : candidates) {
    if (paper_load[c.paper] >= reviews_per_paper) continue;
    if (reviewer_load[c.reviewer] >= papers_per_reviewer_cap) continue;
    assignment[c.paper].push_back(c.reviewer);
    ++paper_load[c.paper];
    ++reviewer_load[c.reviewer];
  }

  std::cout << "assigned " << corpus.queries.size() << " papers to "
            << num_reviewers << " reviewers (p = " << reviews_per_paper
            << " reviews/paper, r <= " << papers_per_reviewer_cap
            << " papers/reviewer)\n\n";
  std::size_t topical_hits = 0, total = 0;
  for (std::size_t pa = 0; pa < assignment.size(); ++pa) {
    std::cout << "paper " << pa << " (area " << corpus.queries[pa].topic
              << ") -> reviewers:";
    for (auto rv : assignment[pa]) {
      std::cout << " R" << rv << "(area " << reviewer_topic[rv] << ")";
      topical_hits += (reviewer_topic[rv] == corpus.queries[pa].topic);
      ++total;
    }
    std::cout << "\n";
  }
  std::cout << "\nassignments landing in the submission's own area: "
            << topical_hits << "/" << total << "\n"
            << "(the paper: fully automatic assignments were judged as good "
               "as human experts')\n";
  // Success criterion for the demo: a clear majority of assignments topical.
  return topical_hits * 3 >= total * 2 ? 0 : 1;
}
