// Section 5.3 information-filtering demo: a standing interest profile
// ("selective dissemination of information") matched against an incoming
// stream of articles; items above a similarity threshold are delivered.
// Relevance feedback sharpens the profile over time.
//
//   $ ./examples/news_filter

#include <iomanip>
#include <iostream>

#include "lsi/lsi_index.hpp"
#include "synth/corpus.hpp"

int main() {
  using namespace lsi;

  // Historical archive to learn the semantic space from.
  synth::CorpusSpec spec;
  spec.topics = 6;
  spec.concepts_per_topic = 10;
  spec.docs_per_topic = 30;
  spec.queries_per_topic = 1;
  spec.query_offform_prob = 0.5;
  spec.seed = 31337;
  auto corpus = synth::generate_corpus(spec);

  // Interleaved split (documents are grouped by topic, so a prefix split
  // would starve the stream of some topics entirely).
  text::Collection archive;
  std::vector<std::size_t> stream_ids;
  for (std::size_t d = 0; d < corpus.docs.size(); ++d) {
    if (d % 3 == 2) {
      stream_ids.push_back(d);
    } else {
      archive.push_back(corpus.docs[d]);
    }
  }

  core::IndexOptions opts;
  opts.scheme = weighting::kLogEntropy;
  opts.k = 30;
  auto index = core::LsiIndex::try_build(archive, opts).value();
  std::cout << "archive indexed: " << archive.size() << " articles\n";

  // The user's standing interest: the topic-0 query.
  const auto& interest = corpus.queries[0];
  la::Vector profile = index.project(interest.text);
  std::cout << "standing interest: \"" << interest.text << "\" (topic "
            << interest.topic << ")\n\n";

  const double threshold = 0.35;
  std::size_t delivered = 0, relevant_delivered = 0, missed = 0;
  int feedback_updates = 0;
  std::cout << "streaming " << stream_ids.size()
            << " incoming articles (deliver at cosine >= " << threshold
            << "):\n";
  for (std::size_t d : stream_ids) {
    const auto& article = corpus.docs[d];
    const la::Vector v = index.project(article.body);
    const double cos = la::cosine(profile, v);
    const bool topical = corpus.doc_topics[d] == interest.topic;
    if (cos >= threshold) {
      ++delivered;
      relevant_delivered += topical;
      if (delivered <= 8) {
        std::cout << "  deliver " << article.label << "  cosine "
                  << std::fixed << std::setprecision(3) << cos
                  << (topical ? "  [relevant]" : "  [off-topic]") << "\n";
      }
      // Relevance feedback: pull the profile toward confirmed-relevant
      // items (simulating the user marking deliveries).
      if (topical && feedback_updates < 5) {
        for (std::size_t i = 0; i < profile.size(); ++i) {
          profile[i] = 0.8 * profile[i] + 0.2 * v[i];
        }
        ++feedback_updates;
      }
    } else if (topical) {
      ++missed;
    }
  }

  std::cout << "\ndelivered: " << delivered << "  relevant among them: "
            << relevant_delivered << "  relevant missed: " << missed << "\n"
            << "precision "
            << (delivered ? 100.0 * relevant_delivered / delivered : 0)
            << "%  recall "
            << (relevant_delivered + missed
                    ? 100.0 * relevant_delivered /
                          (relevant_delivered + missed)
                    : 0)
            << "%\n"
            << "(profile refined " << feedback_updates
            << " times by relevance feedback)\n";
  return 0;
}
