// Section 5.4 cross-language retrieval demo (after Landauer & Littman):
// train on dual-language documents, fold in monolingual ones, and query in
// either language with no translation step.
//
//   $ ./examples/crosslang_search

#include <iostream>

#include "lsi/lsi_index.hpp"
#include "synth/bilingual.hpp"

int main() {
  using namespace lsi;

  synth::BilingualSpec spec;
  spec.topics = 5;
  spec.concepts_per_topic = 8;
  spec.docs_per_topic = 15;
  spec.queries_per_topic = 2;
  spec.seed = 4242;
  auto corpus = synth::generate_bilingual_corpus(spec);

  // Train on the dual-language ("mated abstract") collection.
  core::IndexOptions opts;
  opts.scheme = weighting::kLogEntropy;
  opts.k = 25;
  auto index = core::LsiIndex::try_build(corpus.dual, opts).value();
  std::cout << "trained multilingual space on " << corpus.dual.size()
            << " dual-language documents (" << index.vocabulary().size()
            << " terms across both languages)\n";

  // Fold in monolingual language-B documents — these never had a
  // language-A version, yet language-A queries will find them.
  index.add_documents(corpus.mono_b, core::AddMethod::kFoldIn);
  std::cout << "folded in " << corpus.mono_b.size()
            << " monolingual language-B documents\n\n";

  const auto& q = corpus.queries_a[0];
  std::cout << "language-A query: \"" << q.text << "\" (topic " << q.topic
            << ")\n";
  std::cout << "top retrieved monolingual-B documents:\n";
  const std::size_t offset = corpus.dual.size();
  std::size_t shown = 0, topical = 0;
  for (const auto& r : index.query(q.text)) {
    if (r.doc < offset) continue;  // skip the training docs for the demo
    const std::size_t original = r.doc - offset;
    const bool relevant = corpus.doc_topics[original] == q.topic;
    topical += relevant;
    std::cout << "  " << r.label << "  cosine " << r.cosine
              << (relevant ? "  [same topic]" : "") << "\n";
    if (++shown == 8) break;
  }
  std::cout << "\n" << topical << "/8 of the top cross-language hits are "
            << "on-topic — no translation was involved,\nexactly the "
               "behaviour the paper reports for French/English mated "
               "abstracts.\n";

  // Bonus: cross-language term neighborhoods. A language-A term's nearest
  // neighbours include its language-B counterparts.
  const std::string probe = "a0f0";  // topic 0, concept 0, dominant A form
  std::cout << "\nterms nearest to language-A term \"" << probe << "\":\n";
  for (const auto& [term, cos] : index.similar_terms(probe, 6)) {
    std::cout << "  " << term << "  " << cos
              << (term[0] == 'b' ? "  [language B]" : "") << "\n";
  }
  return 0;
}
