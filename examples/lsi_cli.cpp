// lsi_cli: the command-line face of the library — build an LSI database
// from a TSV collection, query it, add documents, and inspect term
// neighborhoods, without writing any C++.
//
//   lsi_cli build  <docs.tsv> <db.lsi> [--k N] [--scheme raw|log-entropy]
//                  [--min-df N] [--stem] [--bigrams]
//   lsi_cli query  <db.lsi> "free text..." [--top N] [--threshold C]
//   lsi_cli query  <db.lsi> --batch-queries <queries.txt> [--top N]
//                  [--threshold C]        (one query per line, ranked
//                  together through the batched retrieval engine)
//   lsi_cli terms  <db.lsi> <term> [--top N]
//   lsi_cli add    <db.lsi> <more.tsv>          (fold-in, writes in place)
//   lsi_cli info   <db.lsi>
//
// docs.tsv: one document per line, "label<TAB>text".

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lsi/batched_retrieval.hpp"
#include "lsi/folding.hpp"
#include "lsi/io.hpp"
#include "lsi/lsi_index.hpp"
#include "lsi/retrieval.hpp"
#include "text/parser.hpp"

namespace {

using namespace lsi;

int usage() {
  std::cerr
      << "usage:\n"
         "  lsi_cli build <docs.tsv> <db.lsi> [--k N] "
         "[--scheme raw|log-entropy] [--min-df N] [--stem] [--bigrams]\n"
         "  lsi_cli query <db.lsi> \"free text\" [--top N] [--threshold C]\n"
         "  lsi_cli query <db.lsi> --batch-queries <queries.txt> [--top N] "
         "[--threshold C]\n"
         "  lsi_cli terms <db.lsi> <term> [--top N]\n"
         "  lsi_cli add   <db.lsi> <more.tsv>\n"
         "  lsi_cli info  <db.lsi>\n";
  return 2;
}

text::Collection read_tsv(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("cannot open " + path);
  text::Collection docs;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    const auto tab = line.find('\t');
    if (tab == std::string::npos) {
      throw std::runtime_error("line without tab: " + line.substr(0, 40));
    }
    docs.push_back({line.substr(0, tab), line.substr(tab + 1)});
  }
  return docs;
}

/// Shared flag scanning: returns the value after `flag` or empty.
std::string flag_value(const std::vector<std::string>& args,
                       const std::string& flag) {
  for (std::size_t i = 0; i + 1 < args.size(); ++i) {
    if (args[i] == flag) return args[i + 1];
  }
  return "";
}

bool has_flag(const std::vector<std::string>& args, const std::string& flag) {
  for (const auto& a : args) {
    if (a == flag) return true;
  }
  return false;
}

int cmd_build(const std::vector<std::string>& args) {
  if (args.size() < 2) return usage();
  const auto docs = read_tsv(args[0]);

  core::IndexOptions opts;
  opts.k = 100;
  if (const auto k = flag_value(args, "--k"); !k.empty()) {
    opts.k = static_cast<core::index_t>(std::stoul(k));
  }
  if (const auto scheme = flag_value(args, "--scheme"); scheme == "raw") {
    opts.scheme = weighting::kRaw;
  } else {
    opts.scheme = weighting::kLogEntropy;
  }
  if (const auto df = flag_value(args, "--min-df"); !df.empty()) {
    opts.parser.min_document_frequency = std::stoul(df);
  }
  opts.parser.stem = has_flag(args, "--stem");
  opts.parser.add_bigrams = has_flag(args, "--bigrams");

  auto index = core::LsiIndex::build(docs, opts);
  core::LsiDatabase db{index.space(), index.vocabulary(),
                       index.doc_labels(), index.options().scheme,
                       index.global_weights()};
  core::save_database_file(args[1], db);
  std::cout << "built " << args[1] << ": " << db.doc_labels.size()
            << " documents, " << db.vocabulary.size() << " terms, k = "
            << db.space.k() << "\n";
  return 0;
}

/// Weighted query vector against a reloaded database.
la::Vector query_vector(const core::LsiDatabase& db,
                        const std::string& text) {
  text::TermDocumentMatrix shim;
  shim.vocabulary = db.vocabulary;  // text_to_term_vector needs the vocab
  la::Vector raw = text::text_to_term_vector(shim, text);
  std::vector<double> g = db.global_weights;
  if (g.empty()) g.assign(db.vocabulary.size(), 1.0);
  return weighting::apply_to_vector(raw, g, db.scheme.local);
}

int cmd_query(const std::vector<std::string>& args) {
  if (args.size() < 2) return usage();
  const auto db = core::load_database_file(args[0]);
  core::QueryOptions qopts;
  qopts.top_z = 10;
  if (const auto top = flag_value(args, "--top"); !top.empty()) {
    qopts.top_z = std::stoul(top);
  }
  if (const auto th = flag_value(args, "--threshold"); !th.empty()) {
    qopts.min_cosine = std::stod(th);
  }

  if (const auto file = flag_value(args, "--batch-queries"); !file.empty()) {
    std::ifstream is(file);
    if (!is) throw std::runtime_error("cannot open " + file);
    std::vector<std::string> texts;
    std::string line;
    while (std::getline(is, line)) {
      if (!line.empty()) texts.push_back(line);
    }
    std::vector<la::Vector> vectors;
    vectors.reserve(texts.size());
    for (const auto& t : texts) vectors.push_back(query_vector(db, t));
    const auto batch = core::QueryBatch::from_term_vectors(db.space, vectors);
    const auto ranked = core::BatchedRetriever(db.space).rank(batch, qopts);
    for (std::size_t b = 0; b < ranked.size(); ++b) {
      std::cout << "# query " << (b + 1) << ": " << texts[b] << '\n';
      for (const auto& sd : ranked[b]) {
        std::cout << db.doc_labels[sd.doc] << '\t' << sd.cosine << '\n';
      }
    }
    return 0;
  }

  const auto ranked =
      core::retrieve(db.space, query_vector(db, args[1]), qopts);
  for (const auto& sd : ranked) {
    std::cout << db.doc_labels[sd.doc] << '\t' << sd.cosine << '\n';
  }
  return 0;
}

int cmd_terms(const std::vector<std::string>& args) {
  if (args.size() < 2) return usage();
  const auto db = core::load_database_file(args[0]);
  const auto row = db.vocabulary.find(args[1]);
  if (!row) {
    std::cerr << "term not in vocabulary: " << args[1] << "\n";
    return 1;
  }
  std::size_t top = 10;
  if (const auto t = flag_value(args, "--top"); !t.empty()) {
    top = std::stoul(t);
  }
  const la::Vector anchor = db.space.term_coords(*row);
  for (const auto& sd : core::rank_terms(db.space, anchor, top + 1)) {
    if (sd.doc == *row) continue;
    std::cout << db.vocabulary.term(sd.doc) << '\t' << sd.cosine << '\n';
  }
  return 0;
}

int cmd_add(const std::vector<std::string>& args) {
  if (args.size() < 2) return usage();
  auto db = core::load_database_file(args[0]);
  const auto docs = read_tsv(args[1]);
  lsi::la::CooBuilder builder(db.space.num_terms(), docs.size());
  for (std::size_t d = 0; d < docs.size(); ++d) {
    const auto w = query_vector(db, docs[d].body);
    for (core::index_t i = 0; i < w.size(); ++i) {
      if (w[i] != 0.0) builder.add(i, d, w[i]);
    }
    db.doc_labels.push_back(docs[d].label);
  }
  core::fold_in_documents(db.space, builder.to_csc());
  core::save_database_file(args[0], db);
  std::cout << "folded in " << docs.size() << " documents; database now "
            << db.doc_labels.size() << " documents\n";
  return 0;
}

int cmd_info(const std::vector<std::string>& args) {
  if (args.empty()) return usage();
  const auto db = core::load_database_file(args[0]);
  std::cout << "documents: " << db.doc_labels.size() << "\n"
            << "terms:     " << db.vocabulary.size() << "\n"
            << "factors:   " << db.space.k() << "\n"
            << "weighting: " << weighting::name(db.scheme) << "\n"
            << "sigma_1:   " << (db.space.sigma.empty() ? 0.0
                                                        : db.space.sigma[0])
            << "\n"
            << "sigma_k:   " << (db.space.sigma.empty() ? 0.0
                                                        : db.space.sigma.back())
            << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) return usage();
  const std::string cmd = args[0];
  args.erase(args.begin());
  try {
    if (cmd == "build") return cmd_build(args);
    if (cmd == "query") return cmd_query(args);
    if (cmd == "terms") return cmd_terms(args);
    if (cmd == "add") return cmd_add(args);
    if (cmd == "info") return cmd_info(args);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return usage();
}
