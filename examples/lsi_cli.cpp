// lsi_cli: the command-line face of the library — build an LSI database
// from a TSV collection, query it, add documents, and inspect term
// neighborhoods, without writing any C++.
//
//   lsi_cli build  <docs.tsv> <db.lsi> [--k N] [--scheme raw|log-entropy]
//                  [--min-df N] [--stem] [--bigrams] [--dense-cutoff N]
//                  [--probe "free text"]
//   lsi_cli query  <db.lsi> "free text..." [--top N] [--threshold C]
//   lsi_cli query  <db.lsi> --batch-queries <queries.txt> [--top N]
//                  [--threshold C]        (one query per line, ranked
//                  together through the batched retrieval engine)
//   lsi_cli terms  <db.lsi> <term> [--top N]
//   lsi_cli add    <db.lsi> <more.tsv>          (fold-in, writes in place)
//   lsi_cli info   <db.lsi>
//
// docs.tsv: one document per line, "label<TAB>text". The literal path
// `@med` names the built-in MEDLINE example collection (the paper's
// Table 2), so the full pipeline runs without any input files.
//
// Every command accepts `--stats[=json|csv]`: an observability sink is
// installed for the whole run and the aggregated stats document (spans with
// p50/p95 latencies, counters, predicted-vs-measured flops) is printed to
// stdout after the command output. `build --dense-cutoff 0 --probe ...`
// exercises the instrumented Lanczos solver and the retrieval engine in one
// process, so the document shows build, lanczos, and retrieval spans side
// by side.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <fstream>
#include <iostream>
#include <iterator>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "data/med_topics.hpp"
#include "la/kernels.hpp"
#include "lsi/lsi.hpp"
#include "serve/server.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace lsi;

// --stats state for the whole run: commands append problem-shape params and
// predicted-vs-measured flop rows; main() assembles and prints the document.
obs::Sink* g_sink = nullptr;
std::vector<std::pair<std::string, double>> g_params;
std::vector<obs::FlopComparison> g_flops;

void stat_param(const std::string& name, double v) {
  if (g_sink) g_params.emplace_back(name, v);
}

std::uint64_t counter_value(const obs::Sink& sink, const std::string& name) {
  for (const auto& [n, v] : sink.metrics().counters()) {
    if (n == name) return v;
  }
  return 0;
}

int usage() {
  std::cerr
      << "usage:\n"
         "  lsi_cli build <docs.tsv> <db.lsi> [--k N] "
         "[--scheme raw|log-entropy] [--min-df N] [--stem] [--bigrams]\n"
         "                [--dense-cutoff N] [--probe \"free text\"] "
         "[--bf16]\n"
         "  lsi_cli query <db.lsi> \"free text\" [--top N] [--threshold C]\n"
         "                [--nprobe P | --recall R | --exact]\n"
         "  lsi_cli query <db.lsi> --batch-queries <queries.txt> [--top N] "
         "[--threshold C]\n"
         "                (--nprobe/--recall build a cluster-pruned "
         "candidate index and\n"
         "                scan only the nearest centroids' lists — see "
         "docs/ANN.md)\n"
         "  lsi_cli terms <db.lsi> <term> [--top N]\n"
         "  lsi_cli add   <db.lsi> <more.tsv>\n"
         "  lsi_cli info  <db.lsi>\n"
         "  lsi_cli ingest-stress <docs.tsv> [--writers N] [--readers N] "
         "[--repeat N]\n"
         "                [--k N] [--queue N] [--consolidate-every N] "
         "[--exact] [--shards N]\n"
         "                (serve queries from snapshots while writer "
         "threads fold in\n"
         "                the tail of the collection; --shards > 1 routes "
         "ingest and\n"
         "                scatter-gathers the queries over a sharded "
         "index)\n"
         "  lsi_cli serve <docs.tsv> [--port N] [--shards N] [--k N] "
         "[--queue N]\n"
         "                [--max-conn N] [--session-ttl SECONDS]\n"
         "                [--ann-cutoff N] [--ann-centroids C]\n"
         "                [--replicas R] [--read-policy round-robin|"
         "least-loaded]\n"
         "                [--query-threads N] [--share-stats]\n"
         "                (build a sharded index and run the HTTP/1.1 query "
         "daemon on\n"
         "                loopback until SIGINT/SIGTERM or POST /shutdown; "
         "--port 0\n"
         "                binds an ephemeral port, printed on startup — see "
         "docs/SERVING.md)\n"
         "  lsi_cli shard-stats <docs.tsv> [--shards N] [--k N] "
         "[--routing rr|size|hash]\n"
         "                [--no-split-k] [--share-stats] "
         "[--probe \"free text\"] [--top N]\n"
         "                [--merge cosine|zscore|rrf] [--collapse C] "
         "[--facets N]\n"
         "                (partition, build every shard's SVD and print the "
         "per-shard table;\n"
         "                --share-stats exchanges Equation-5 global weights "
         "across shards,\n"
         "                --merge/--collapse/--facets drive the gather "
         "pipeline — see\n"
         "                docs/GATHER.md)\n"
         "Every command also accepts --stats[=json|csv] and "
         "--kernel portable|avx2|auto\n"
         "(force the SIMD microkernel set, same vocabulary as LSI_KERNEL — "
         "see\ndocs/KERNELS.md); `build --bf16` stores document vectors in "
         "bf16 and scores\nagainst them. <docs.tsv> may be @med for the\n"
         "built-in MEDLINE example collection.\n";
  return 2;
}

Collection read_tsv(const std::string& path) {
  if (path == "@med") return data::med_topics();
  std::ifstream is(path);
  if (!is) throw std::runtime_error("cannot open " + path);
  Collection docs;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    const auto tab = line.find('\t');
    if (tab == std::string::npos) {
      throw std::runtime_error("line without tab: " + line.substr(0, 40));
    }
    docs.push_back({line.substr(0, tab), line.substr(tab + 1)});
  }
  return docs;
}

/// Shared flag scanning: returns the value after `flag` or empty.
std::string flag_value(const std::vector<std::string>& args,
                       const std::string& flag) {
  for (std::size_t i = 0; i + 1 < args.size(); ++i) {
    if (args[i] == flag) return args[i + 1];
  }
  return "";
}

bool has_flag(const std::vector<std::string>& args, const std::string& flag) {
  for (const auto& a : args) {
    if (a == flag) return true;
  }
  return false;
}

/// Appends the retrieval predicted-vs-measured flop rows for a batch of b
/// queries just ranked against `space` (model: lsi/flops.hpp).
void record_retrieval_flops(const SemanticSpace& space, std::uint64_t b,
                            const QueryStats& stats) {
  if (!g_sink) return;
  core::FlopModelParams fp;
  fp.m = space.num_terms();
  fp.n = space.num_docs();
  fp.k = space.k();
  fp.b = b;
  // Predict only the stages the stats actually measured: projection is
  // absent when the query entered pre-projected (project_seconds == 0), and
  // the norm-cache fill is modeled separately (flops_doc_norm_cache). The
  // remaining gap is the sweep skipping zero query weights, which the dense
  // model cannot know about.
  std::uint64_t predicted = core::flops_batch_score(fp);
  if (stats.project_seconds > 0.0) predicted += core::flops_batch_project(fp);
  g_flops.push_back({"retrieval.batch", predicted, stats.flops});
}

int cmd_build(const std::vector<std::string>& args) {
  if (args.size() < 2) return usage();
  const auto docs = read_tsv(args[0]);

  IndexOptions opts;
  opts.k = 100;
  if (const auto k = flag_value(args, "--k"); !k.empty()) {
    opts.k = static_cast<core::index_t>(std::stoul(k));
  }
  if (const auto scheme = flag_value(args, "--scheme"); scheme == "raw") {
    opts.scheme = weighting::kRaw;
  } else {
    opts.scheme = weighting::kLogEntropy;
  }
  if (const auto df = flag_value(args, "--min-df"); !df.empty()) {
    opts.parser.min_document_frequency = std::stoul(df);
  }
  if (const auto dc = flag_value(args, "--dense-cutoff"); !dc.empty()) {
    opts.build.dense_cutoff = static_cast<core::index_t>(std::stoul(dc));
  }
  opts.parser.stem = has_flag(args, "--stem");
  opts.parser.add_bigrams = has_flag(args, "--bigrams");
  opts.compress_docs = has_flag(args, "--bf16");

  auto index = LsiIndex::try_build(docs, opts).value();
  LsiDatabase db{index.space(), index.vocabulary(),
                 index.doc_labels(), index.options().scheme,
                 index.global_weights()};
  try_save_database_file(args[1], db).or_throw();
  std::cout << "built " << args[1] << ": " << db.doc_labels.size()
            << " documents, " << db.vocabulary.size() << " terms, k = "
            << db.space.k() << "\n";

  if (g_sink) {
    stat_param("terms", static_cast<double>(index.space().num_terms()));
    stat_param("docs", static_cast<double>(index.space().num_docs()));
    stat_param("k", static_cast<double>(index.space().k()));
    stat_param("nnz", static_cast<double>(index.weighted_matrix().nnz()));
    // Section 4.2 cost skeleton for the sparse SVD just computed, using the
    // iteration count the instrumented solver recorded.
    const std::uint64_t steps = counter_value(*g_sink, "lanczos.steps");
    if (steps > 0) {
      core::FlopModelParams fp;
      fp.m = index.space().num_terms();
      fp.n = index.space().num_docs();
      fp.nnz_a = index.weighted_matrix().nnz();
      fp.iterations = steps;
      fp.triplets = index.space().k();
      g_flops.push_back({"lanczos.svd", core::flops_recompute(fp),
                         counter_value(*g_sink, "lanczos.flops_measured")});
    }
  }

  if (const auto probe = flag_value(args, "--probe"); !probe.empty()) {
    SearchOptions sopts;
    sopts.z = 10;
    QueryStats stats;
    std::cout << "# probe: " << probe << '\n';
    for (const auto& hit : index.query(probe, sopts.query_options(), &stats)) {
      std::cout << hit.label << '\t' << hit.cosine << '\n';
    }
    record_retrieval_flops(index.space(), 1, stats);
  }
  return 0;
}

/// Weighted query vector against a reloaded database.
la::Vector query_vector(const LsiDatabase& db, const std::string& text) {
  TermDocumentMatrix shim;
  shim.vocabulary = db.vocabulary;  // text_to_term_vector needs the vocab
  la::Vector raw = text::text_to_term_vector(shim, text);
  std::vector<double> g = db.global_weights;
  if (g.empty()) g.assign(db.vocabulary.size(), 1.0);
  return weighting::apply_to_vector(raw, g, db.scheme.local);
}

int cmd_query(const std::vector<std::string>& args) {
  if (args.size() < 2) return usage();
  const auto db = try_load_database_file(args[0]).value();
  SearchOptions sopts;
  sopts.z = 10;
  if (const auto top = flag_value(args, "--top"); !top.empty()) {
    sopts.z = std::stoul(top);
  }
  if (const auto th = flag_value(args, "--threshold"); !th.empty()) {
    sopts.min_cosine = std::stod(th);
  }
  if (has_flag(args, "--exact")) sopts.search = core::SearchMode::kExact;
  if (const auto v = flag_value(args, "--nprobe"); !v.empty()) {
    sopts.nprobe = std::stoul(v);
  }
  if (const auto v = flag_value(args, "--recall"); !v.empty()) {
    sopts.recall_target = std::stod(v);
  }
  if (Status s = sopts.Validate(); !s.ok()) {
    std::cerr << "invalid search options: " << s.to_string() << "\n";
    return 2;
  }
  stat_param("terms", static_cast<double>(db.space.num_terms()));
  stat_param("docs", static_cast<double>(db.space.num_docs()));
  stat_param("k", static_cast<double>(db.space.k()));

  // The CLI asked for pruning explicitly (--nprobe/--recall without
  // --exact): build the cluster structure on the spot with no size cutoff,
  // so the flags work even on demo-sized databases.
  auto space = std::make_shared<SemanticSpace>(db.space);
  std::shared_ptr<const AnnIndex> ann;
  if (sopts.search != core::SearchMode::kExact &&
      (sopts.nprobe > 0 || !flag_value(args, "--recall").empty())) {
    AnnOptions aopts;
    aopts.exact_cutoff = 0;
    ann = AnnIndex::build(*space, aopts, /*generation=*/0);
    if (ann) {
      std::cout << "# ann: " << ann->num_centroids() << " centroids, nprobe "
                << ann->resolve_nprobe(sopts) << '\n';
      stat_param("ann_centroids", static_cast<double>(ann->num_centroids()));
    }
  }
  const BatchedRetriever retriever(space, ann);

  if (const auto file = flag_value(args, "--batch-queries"); !file.empty()) {
    std::ifstream is(file);
    if (!is) throw std::runtime_error("cannot open " + file);
    std::vector<std::string> texts;
    std::string line;
    while (std::getline(is, line)) {
      if (!line.empty()) texts.push_back(line);
    }
    std::vector<la::Vector> vectors;
    vectors.reserve(texts.size());
    for (const auto& t : texts) vectors.push_back(query_vector(db, t));
    QueryStats stats;
    const auto batch =
        QueryBatch::from_term_vectors(*space, vectors, &stats);
    const auto ranked = retriever.rank(batch, sopts, &stats);
    for (std::size_t b = 0; b < ranked.size(); ++b) {
      std::cout << "# query " << (b + 1) << ": " << texts[b] << '\n';
      for (const auto& sd : ranked[b]) {
        std::cout << db.doc_labels[sd.doc] << '\t' << sd.cosine << '\n';
      }
    }
    stat_param("batch_size", static_cast<double>(texts.size()));
    record_retrieval_flops(*space, texts.size(), stats);
    return 0;
  }

  QueryStats stats;
  const auto batch = QueryBatch::from_term_vectors(
      *space, {query_vector(db, args[1])}, &stats);
  const auto ranked = retriever.rank(batch, sopts, &stats);
  for (const auto& sd : ranked.front()) {
    std::cout << db.doc_labels[sd.doc] << '\t' << sd.cosine << '\n';
  }
  record_retrieval_flops(*space, 1, stats);
  return 0;
}

int cmd_terms(const std::vector<std::string>& args) {
  if (args.size() < 2) return usage();
  const auto db = try_load_database_file(args[0]).value();
  const auto row = db.vocabulary.find(args[1]);
  if (!row) {
    std::cerr << "term not in vocabulary: " << args[1] << "\n";
    return 1;
  }
  std::size_t top = 10;
  if (const auto t = flag_value(args, "--top"); !t.empty()) {
    top = std::stoul(t);
  }
  const la::Vector anchor = db.space.term_coords(*row);
  for (const auto& sd : rank_terms(db.space, anchor, top + 1)) {
    if (sd.doc == *row) continue;
    std::cout << db.vocabulary.term(sd.doc) << '\t' << sd.cosine << '\n';
  }
  return 0;
}

int cmd_add(const std::vector<std::string>& args) {
  if (args.size() < 2) return usage();
  auto db = try_load_database_file(args[0]).value();
  const auto docs = read_tsv(args[1]);
  la::CooBuilder builder(db.space.num_terms(), docs.size());
  for (std::size_t d = 0; d < docs.size(); ++d) {
    const auto w = query_vector(db, docs[d].body);
    for (core::index_t i = 0; i < w.size(); ++i) {
      if (w[i] != 0.0) builder.add(i, d, w[i]);
    }
    db.doc_labels.push_back(docs[d].label);
  }
  fold_in_documents(db.space, builder.to_csc());
  try_save_database_file(args[0], db).or_throw();
  std::cout << "folded in " << docs.size() << " documents; database now "
            << db.doc_labels.size() << " documents\n";
  if (g_sink) {
    core::FlopModelParams fp;
    fp.m = db.space.num_terms();
    fp.k = db.space.k();
    fp.p = docs.size();
    g_flops.push_back({"foldin.documents", core::flops_fold_documents(fp),
                       2 * fp.m * fp.k * fp.p});
  }
  return 0;
}

void print_shard_table(const std::vector<ShardedIndex::ShardInfo>& infos,
                       const std::string& title) {
  util::TextTable table({"shard", "docs", "terms", "k", "gen", "unconsol",
                         "queued", "ingested", "publishes", "consol",
                         "ann_c", "ann_gen", "scan"});
  for (const auto& info : infos) {
    table.add_row({util::fmt_int(static_cast<long long>(info.shard)),
                   util::fmt_int(static_cast<long long>(info.docs)),
                   util::fmt_int(static_cast<long long>(info.terms)),
                   util::fmt_int(static_cast<long long>(info.k)),
                   util::fmt_int(static_cast<long long>(info.generation)),
                   util::fmt_int(static_cast<long long>(info.unconsolidated)),
                   util::fmt_int(static_cast<long long>(info.queued)),
                   util::fmt_int(static_cast<long long>(info.ingested)),
                   util::fmt_int(static_cast<long long>(info.publishes)),
                   util::fmt_int(static_cast<long long>(info.consolidations)),
                   util::fmt_int(static_cast<long long>(info.ann_centroids)),
                   util::fmt_int(static_cast<long long>(info.ann_generation)),
                   info.ann_exact_fallback ? "exact" : "pruned"});
  }
  table.print(std::cout, title);
}

// Partition a collection, build every shard's independent truncated SVD and
// print the per-shard statistics table — the operational face of the
// Section 6 subcollection decomposition (docs/SHARDING.md).
int cmd_shard_stats(const std::vector<std::string>& args) {
  if (args.empty()) return usage();
  const auto docs = read_tsv(args[0]);

  ShardingOptions sopts;
  if (const auto v = flag_value(args, "--shards"); !v.empty()) {
    sopts.num_shards = std::max<std::size_t>(1, std::stoul(v));
  }
  if (const auto v = flag_value(args, "--k"); !v.empty()) {
    sopts.index.k = static_cast<core::index_t>(std::stoul(v));
  }
  if (const auto v = flag_value(args, "--routing"); !v.empty()) {
    sopts.routing = parse_routing_policy(v).value();
  }
  sopts.split_k_budget = !has_flag(args, "--no-split-k");
  sopts.share_term_stats = has_flag(args, "--share-stats");

  util::WallTimer wall;
  auto index = ShardedIndex::try_build(docs, sopts).value();
  const double build_s = wall.seconds();

  std::cout << "sharded index: " << docs.size() << " documents across "
            << index.num_shards() << " shards ("
            << routing_policy_name(sopts.routing) << " routing, total k = "
            << sopts.index.k
            << (sopts.split_k_budget ? ", split across shards"
                                     : " per shard")
            << "), built in " << build_s << "s\n";
  print_shard_table(index.shard_infos(), "");
  if (sopts.share_term_stats) {
    const auto ts = index.term_stats_info();
    std::cout << "term stats: v" << ts.version << ", " << ts.docs
              << " docs, " << ts.terms << " terms shared across shards\n";
  }

  stat_param("shards", static_cast<double>(index.num_shards()));
  stat_param("docs", static_cast<double>(docs.size()));
  stat_param("k_total", static_cast<double>(sopts.index.k));

  if (const auto probe = flag_value(args, "--probe"); !probe.empty()) {
    SearchOptions qopts;
    qopts.z = 10;
    if (const auto top = flag_value(args, "--top"); !top.empty()) {
      qopts.z = std::stoul(top);
    }
    if (const auto v = flag_value(args, "--merge"); !v.empty()) {
      if (!gather::parse_merge_policy(v, qopts.merge)) {
        std::cerr << "--merge must be cosine, zscore, or rrf\n";
        return 1;
      }
    }
    if (const auto v = flag_value(args, "--collapse"); !v.empty()) {
      qopts.collapse_cosine = std::stod(v);
    }
    if (const auto v = flag_value(args, "--facets"); !v.empty()) {
      qopts.facets = std::stoul(v);
    }
    QueryStats stats;
    std::cout << "# probe: " << probe << " (merge="
              << gather::merge_policy_name(qopts.merge) << ")\n";
    if (qopts.facets > 0 || qopts.collapse_cosine > 0.0) {
      // Rich gather path: fusion score + raw cosine + collapsed duplicates
      // per hit, facet suggestions after the ranking.
      const auto results =
          index.snapshot().gather_batch({probe}, qopts, &stats);
      for (const auto& hit : results[0].hits) {
        std::cout << "doc " << hit.doc << "\tscore " << hit.score
                  << "\tcosine " << hit.cosine << "\tshard " << hit.shard;
        if (!hit.duplicates.empty()) {
          std::cout << "\tdups";
          for (const auto d : hit.duplicates) std::cout << ' ' << d;
        }
        std::cout << '\n';
      }
      if (!results[0].facets.empty()) {
        std::cout << "# facets:";
        for (const auto& f : results[0].facets) {
          std::cout << ' ' << f.term;
        }
        std::cout << '\n';
      }
    } else {
      for (const auto& hit : index.snapshot().query(probe, qopts, &stats)) {
        std::cout << hit.label << '\t' << hit.cosine << '\n';
      }
    }
    stat_param("probe_docs_scored", static_cast<double>(stats.docs_scored));
  }
  return 0;
}

// The --shards > 1 variant of ingest-stress: writers route documents through
// the ShardedIndex (per-shard queues and backpressure) while readers pin
// ShardedSnapshots and scatter-gather their queries.
int run_sharded_ingest_stress(const Collection& docs, std::size_t shards,
                              std::size_t writers, std::size_t readers,
                              std::size_t repeat, const IndexOptions& iopts,
                              const ConcurrentOptions& copts) {
  ShardingOptions sopts;
  sopts.num_shards = shards;
  sopts.index = iopts;
  sopts.split_k_budget = false;  // operational tool: keep each shard's k
  sopts.concurrent = copts;

  const std::size_t base = std::max<std::size_t>(4, docs.size() / 3);
  Collection head(docs.begin(), docs.begin() + base);
  auto index = ShardedIndex::try_build(head, sopts).value();
  std::cout << "base index: " << base << " documents across " << shards
            << " shards; streaming " << (docs.size() - base) * repeat
            << " documents through " << writers << " writers while "
            << readers << " readers scatter-gather\n";

  std::atomic<bool> done{false};
  std::atomic<std::size_t> queries{0};
  std::atomic<std::size_t> overloads{0};
  util::WallTimer wall;

  std::vector<std::thread> writer_threads;
  for (std::size_t w = 0; w < writers; ++w) {
    writer_threads.emplace_back([&, w] {
      for (std::size_t rep = 0; rep < repeat; ++rep) {
        for (std::size_t d = base + w; d < docs.size(); d += writers) {
          Document doc = docs[d];
          if (rep > 0) {
            doc.label += '#';
            doc.label += std::to_string(rep);
          }
          if (d % 2 == 0) {
            if (!index.add(std::move(doc)).ok()) return;
          } else {
            for (;;) {
              const Status s = index.try_add(doc);
              if (s.ok()) break;
              if (s.code() != StatusCode::kResourceExhausted) return;
              overloads.fetch_add(1, std::memory_order_relaxed);
              std::this_thread::yield();
            }
          }
        }
      }
    });
  }

  std::vector<std::thread> reader_threads;
  for (std::size_t r = 0; r < readers; ++r) {
    reader_threads.emplace_back([&, r] {
      std::size_t q = r;
      while (!done.load(std::memory_order_acquire)) {
        const auto snap = index.snapshot();
        std::vector<QueryResult> hits;
        {
          LSI_OBS_SPAN(span, "serving.query");
          hits = snap.query(docs[q % base].body);
        }
        if (hits.empty()) {
          std::cerr << "empty ranking against " << snap.num_docs()
                    << " documents\n";
        }
        queries.fetch_add(1, std::memory_order_relaxed);
        q += readers;
      }
    });
  }

  for (auto& t : writer_threads) t.join();
  index.flush();
  done.store(true, std::memory_order_release);
  for (auto& t : reader_threads) t.join();
  const double seconds = wall.seconds();
  index.shutdown();

  const auto infos = index.shard_infos();
  std::uint64_t publishes = 0, consolidations = 0;
  for (const auto& info : infos) {
    publishes += info.publishes;
    consolidations += info.consolidations;
  }
  std::cout << "ingested " << index.ingested() << " documents in " << seconds
            << "s (" << static_cast<double>(index.ingested()) / seconds
            << " docs/s)\n"
            << "served   " << queries.load() << " queries ("
            << static_cast<double>(queries.load()) / seconds << " q/s), "
            << overloads.load() << " backpressure retries\n"
            << "published " << publishes << " snapshots, " << consolidations
            << " consolidations across " << shards << " shards\n";
  print_shard_table(infos, "");

  stat_param("shards", static_cast<double>(shards));
  stat_param("writers", static_cast<double>(writers));
  stat_param("readers", static_cast<double>(readers));
  stat_param("docs_ingested", static_cast<double>(index.ingested()));
  stat_param("queries", static_cast<double>(queries.load()));
  stat_param("qps", static_cast<double>(queries.load()) / seconds);
  stat_param("publishes", static_cast<double>(publishes));
  stat_param("consolidations", static_cast<double>(consolidations));
  return 0;
}

// Serve-while-updating exerciser: builds an index from the head of the
// collection, then streams the rest through ConcurrentIndexer writer threads
// while reader threads hammer snapshot queries. Prints throughput and the
// snapshot/consolidation counters; with --stats the concurrent.* and
// serving.query spans land in the document. With --shards > 1 the same
// workload runs against a ShardedIndex instead.
int cmd_ingest_stress(const std::vector<std::string>& args) {
  if (args.empty()) return usage();
  const auto docs = read_tsv(args[0]);
  if (docs.size() < 8) {
    std::cerr << "ingest-stress needs at least 8 documents\n";
    return 1;
  }

  std::size_t writers = 2, readers = 4, repeat = 1;
  IndexOptions iopts;
  iopts.k = 20;
  ConcurrentOptions copts;
  if (const auto v = flag_value(args, "--writers"); !v.empty()) {
    writers = std::max<std::size_t>(1, std::stoul(v));
  }
  if (const auto v = flag_value(args, "--readers"); !v.empty()) {
    readers = std::max<std::size_t>(1, std::stoul(v));
  }
  if (const auto v = flag_value(args, "--repeat"); !v.empty()) {
    repeat = std::max<std::size_t>(1, std::stoul(v));
  }
  if (const auto v = flag_value(args, "--k"); !v.empty()) {
    iopts.k = static_cast<core::index_t>(std::stoul(v));
  }
  if (const auto v = flag_value(args, "--queue"); !v.empty()) {
    copts.queue_capacity = std::stoul(v);
  }
  if (const auto v = flag_value(args, "--consolidate-every"); !v.empty()) {
    copts.consolidate_every = std::stoul(v);
  }
  copts.exact_update = has_flag(args, "--exact");

  if (const auto v = flag_value(args, "--shards"); !v.empty()) {
    if (const std::size_t shards = std::max<std::size_t>(1, std::stoul(v));
        shards > 1) {
      return run_sharded_ingest_stress(docs, shards, writers, readers, repeat,
                                       iopts, copts);
    }
  }

  const std::size_t base = std::max<std::size_t>(4, docs.size() / 3);
  Collection head(docs.begin(), docs.begin() + base);
  ConcurrentIndexer indexer(LsiIndex::try_build(head, iopts).value(), copts);
  std::cout << "base index: " << base << " documents, k = "
            << indexer.snapshot()->space().k() << "; streaming "
            << (docs.size() - base) * repeat << " documents through "
            << writers << " writers while " << readers
            << " readers query\n";

  std::atomic<bool> done{false};
  std::atomic<std::size_t> queries{0};
  std::atomic<std::size_t> overloads{0};
  util::WallTimer wall;

  std::vector<std::thread> writer_threads;
  for (std::size_t w = 0; w < writers; ++w) {
    writer_threads.emplace_back([&, w] {
      for (std::size_t rep = 0; rep < repeat; ++rep) {
        for (std::size_t d = base + w; d < docs.size(); d += writers) {
          Document doc = docs[d];
          if (rep > 0) {
            doc.label += '#';
            doc.label += std::to_string(rep);
          }
          // Alternate blocking and non-blocking ingestion so both
          // backpressure paths run under load.
          if (d % 2 == 0) {
            if (!indexer.add(std::move(doc)).ok()) return;
          } else {
            for (;;) {
              const Status s = indexer.try_add(doc);
              if (s.ok()) break;
              if (s.code() != StatusCode::kResourceExhausted) return;
              overloads.fetch_add(1, std::memory_order_relaxed);
              std::this_thread::yield();
            }
          }
        }
      }
    });
  }

  std::vector<std::thread> reader_threads;
  for (std::size_t r = 0; r < readers; ++r) {
    reader_threads.emplace_back([&, r] {
      std::size_t q = r;
      while (!done.load(std::memory_order_acquire)) {
        auto snap = indexer.snapshot();
        std::vector<QueryResult> hits;
        {
          LSI_OBS_SPAN(span, "serving.query");
          hits = snap->query(docs[q % base].body);
        }
        if (hits.empty()) {
          std::cerr << "empty ranking against " << snap->space().num_docs()
                    << " documents\n";
        }
        queries.fetch_add(1, std::memory_order_relaxed);
        q += readers;
      }
    });
  }

  for (auto& t : writer_threads) t.join();
  indexer.flush();
  done.store(true, std::memory_order_release);
  for (auto& t : reader_threads) t.join();
  const double seconds = wall.seconds();
  indexer.shutdown();

  const auto snap = indexer.snapshot();
  std::cout << "ingested " << indexer.ingested() << " documents in "
            << seconds << "s ("
            << static_cast<double>(indexer.ingested()) / seconds
            << " docs/s)\n"
            << "served   " << queries.load() << " queries ("
            << static_cast<double>(queries.load()) / seconds << " q/s), "
            << overloads.load() << " backpressure retries\n"
            << "published " << indexer.publishes() << " snapshots, "
            << indexer.consolidations() << " consolidations; final index "
            << snap->space().num_docs() << " documents (generation "
            << snap->generation() << ")\n";

  stat_param("writers", static_cast<double>(writers));
  stat_param("readers", static_cast<double>(readers));
  stat_param("docs_ingested", static_cast<double>(indexer.ingested()));
  stat_param("queries", static_cast<double>(queries.load()));
  stat_param("qps", static_cast<double>(queries.load()) / seconds);
  stat_param("publishes", static_cast<double>(indexer.publishes()));
  stat_param("consolidations", static_cast<double>(indexer.consolidations()));
  return 0;
}

// ---------------------------------------------------------------------------
// serve: build a sharded index and run the HTTP/1.1 query daemon
// ---------------------------------------------------------------------------

std::atomic<bool> g_interrupted{false};

void on_signal(int) { g_interrupted.store(true); }

int cmd_serve(const std::vector<std::string>& args) {
  if (args.empty()) return usage();
  const auto docs = read_tsv(args[0]);

  core::ShardingOptions sopts;
  sopts.num_shards = 2;
  sopts.index.k = 16;
  if (const auto v = flag_value(args, "--shards"); !v.empty()) {
    sopts.num_shards = std::stoul(v);
  }
  if (const auto v = flag_value(args, "--k"); !v.empty()) {
    sopts.index.k = static_cast<core::index_t>(std::stol(v));
  }
  if (const auto v = flag_value(args, "--queue"); !v.empty()) {
    sopts.concurrent.queue_capacity = std::stoul(v);
  }
  if (const auto v = flag_value(args, "--ann-cutoff"); !v.empty()) {
    sopts.concurrent.ann.exact_cutoff = std::stoul(v);
  }
  if (const auto v = flag_value(args, "--ann-centroids"); !v.empty()) {
    sopts.concurrent.ann.num_centroids =
        static_cast<core::index_t>(std::stoul(v));
  }
  if (const auto v = flag_value(args, "--replicas"); !v.empty()) {
    sopts.replicas = std::stoul(v);
  }
  if (const auto v = flag_value(args, "--read-policy"); !v.empty()) {
    if (v == "round-robin") {
      sopts.read_policy = core::ReadPolicy::kRoundRobin;
    } else if (v == "least-loaded") {
      sopts.read_policy = core::ReadPolicy::kLeastLoaded;
    } else {
      std::cerr << "--read-policy must be round-robin or least-loaded\n";
      return 1;
    }
  }
  if (const auto v = flag_value(args, "--query-threads"); !v.empty()) {
    sopts.query_threads = std::stoul(v);
  }
  sopts.share_term_stats = has_flag(args, "--share-stats");

  serve::ServerOptions opts;
  if (const auto v = flag_value(args, "--port"); !v.empty()) {
    opts.port = static_cast<std::uint16_t>(std::stoul(v));
  }
  if (const auto v = flag_value(args, "--max-conn"); !v.empty()) {
    opts.max_connections = std::stoul(v);
  }
  if (const auto v = flag_value(args, "--session-ttl"); !v.empty()) {
    opts.session_ttl = std::chrono::seconds(std::stol(v));
  }

  util::WallTimer timer;
  auto built = core::ShardedIndex::try_build(docs, sopts);
  if (!built.ok()) {
    std::cerr << "build failed: " << built.status().to_string() << "\n";
    return 1;
  }
  core::ShardedIndex& index = *built;
  std::cout << "built " << docs.size() << " docs across " << index.num_shards()
            << " shards (x" << index.replicas_per_shard() << " replicas, "
            << core::read_policy_name(sopts.read_policy) << " reads) in "
            << timer.millis() << " ms\n";

  serve::HttpServer server(index, opts);
  if (Status s = server.start(); !s.ok()) {
    std::cerr << "serve failed: " << s.to_string() << "\n";
    return 1;
  }
  // The line smoke drivers wait for; flushed so a piped reader sees it now.
  std::cout << "listening on 127.0.0.1:" << server.port() << std::endl;

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  // Park until POST /shutdown drains the daemon or a signal asks us to.
  while (!server.stopped() && !g_interrupted.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  if (g_interrupted.load()) std::cout << "signal: draining\n";
  server.drain();

  const serve::HttpServer::Stats stats = server.stats();
  std::cout << "served " << stats.requests << " requests ("
            << stats.responses_2xx << " 2xx, " << stats.responses_4xx
            << " 4xx, " << stats.responses_5xx << " 5xx, "
            << stats.backpressure_429 << " throttled), ingested "
            << stats.docs_ingested << " docs\n";
  index.shutdown();
  return 0;
}

int cmd_info(const std::vector<std::string>& args) {
  if (args.empty()) return usage();
  const auto db = try_load_database_file(args[0]).value();
  std::cout << "documents: " << db.doc_labels.size() << "\n"
            << "terms:     " << db.vocabulary.size() << "\n"
            << "factors:   " << db.space.k() << "\n"
            << "weighting: " << weighting::name(db.scheme) << "\n"
            << "sigma_1:   " << (db.space.sigma.empty() ? 0.0
                                                        : db.space.sigma[0])
            << "\n"
            << "sigma_k:   " << (db.space.sigma.empty() ? 0.0
                                                        : db.space.sigma.back())
            << "\n"
            << "doc store: " << (db.space.compress_docs() ? "bf16" : "fp64")
            << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);

  // --stats[=json|csv] applies to every command; strip it before dispatch.
  std::string stats_format;
  for (auto it = args.begin(); it != args.end();) {
    if (*it == "--stats" || *it == "--stats=json") {
      stats_format = "json";
      it = args.erase(it);
    } else if (*it == "--stats=csv") {
      stats_format = "csv";
      it = args.erase(it);
    } else {
      ++it;
    }
  }

  // --kernel portable|avx2|auto applies to every command (same vocabulary
  // as the LSI_KERNEL environment variable; the flag wins). Unknown names
  // are an immediate usage error rather than a silent fallback.
  for (auto it = args.begin(); it != args.end();) {
    if (*it == "--kernel" && std::next(it) != args.end()) {
      const std::string name = *std::next(it);
      if (!la::kern::force(name)) {
        std::cerr << "unknown --kernel '" << name
                  << "' (expected portable, avx2, or auto)\n";
        return 2;
      }
      it = args.erase(it, it + 2);
    } else {
      ++it;
    }
  }

  if (args.empty()) return usage();
  const std::string cmd = args[0];
  args.erase(args.begin());

  obs::Sink sink;
  std::optional<obs::ScopedSink> scoped;
  if (!stats_format.empty()) {
    g_sink = &sink;
    scoped.emplace(&sink);
  }

  int rc = 2;
  try {
    if (cmd == "build") {
      rc = cmd_build(args);
    } else if (cmd == "query") {
      rc = cmd_query(args);
    } else if (cmd == "terms") {
      rc = cmd_terms(args);
    } else if (cmd == "add") {
      rc = cmd_add(args);
    } else if (cmd == "info") {
      rc = cmd_info(args);
    } else if (cmd == "ingest-stress" || cmd == "--ingest-stress") {
      rc = cmd_ingest_stress(args);
    } else if (cmd == "serve") {
      rc = cmd_serve(args);
    } else if (cmd == "shard-stats") {
      rc = cmd_shard_stats(args);
    } else {
      return usage();
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }

  if (rc == 0 && !stats_format.empty()) {
    obs::StatsDoc doc = obs::StatsDoc::from_sink("lsi_cli." + cmd, sink);
    doc.params = g_params;
    doc.flops = g_flops;
    if (stats_format == "csv") {
      obs::write_csv(std::cout, doc);
    } else {
      obs::write_json(std::cout, doc);
    }
  }
  return rc;
}
